(* Tests for the HawkSet core: timestamped locksets, vector clocks, the
   stage-1/2 collector and the stage-3 analysis, on hand-crafted traces. *)

let lid = Trace.Lock_id.of_int
let tid = Trace.Tid.of_int
let s file line = Trace.Site.v file line

module Lockset_tests = struct
  open Hawkset

  let acquire_release () =
    let ls = Lockset.acquire Lockset.empty (lid 1) ~ts:1 in
    let ls = Lockset.acquire ls (lid 2) ~ts:2 in
    Alcotest.(check int) "two locks" 2 (Lockset.cardinal ls);
    Alcotest.(check bool) "mem 1" true (Lockset.mem ls (lid 1));
    let ls = Lockset.release ls (lid 1) in
    Alcotest.(check bool) "released" false (Lockset.mem ls (lid 1));
    Alcotest.(check int) "one left" 1 (Lockset.cardinal ls);
    Alcotest.(check bool) "release absent is noop" true
      (Lockset.equal ls (Lockset.release ls (lid 9)))

  let reacquire_keeps_outermost_ts () =
    let ls = Lockset.acquire Lockset.empty (lid 1) ~ts:1 in
    let ls' = Lockset.acquire ls (lid 1) ~ts:5 in
    Alcotest.(check bool) "unchanged" true (Lockset.equal ls ls')

  let ts_aware_intersection () =
    let a = Lockset.acquire Lockset.empty (lid 1) ~ts:1 in
    let b_same = Lockset.acquire Lockset.empty (lid 1) ~ts:1 in
    let b_diff = Lockset.acquire Lockset.empty (lid 1) ~ts:2 in
    Alcotest.(check int) "same ts: kept" 1
      (Lockset.cardinal (Lockset.inter_same_thread a b_same));
    Alcotest.(check int) "different ts: dropped" 0
      (Lockset.cardinal (Lockset.inter_same_thread a b_diff));
    Alcotest.(check int) "no-ts variant keeps it" 1
      (Lockset.cardinal (Lockset.inter_same_thread_no_ts a b_diff))

  let disjointness_ignores_ts () =
    let a = Lockset.acquire Lockset.empty (lid 1) ~ts:1 in
    let b = Lockset.acquire Lockset.empty (lid 1) ~ts:99 in
    Alcotest.(check bool) "same lock, any ts: not disjoint" false
      (Lockset.disjoint_locks a b);
    let c = Lockset.acquire Lockset.empty (lid 2) ~ts:1 in
    Alcotest.(check bool) "different locks: disjoint" true
      (Lockset.disjoint_locks a c);
    Alcotest.(check bool) "empty is disjoint with anything" true
      (Lockset.disjoint_locks Lockset.empty a)

  let lockset_gen =
    QCheck.Gen.(
      let entry = pair (int_bound 20) (int_range 1 50) in
      list_size (int_bound 8) entry
      |> map (fun entries ->
             List.fold_left
               (fun ls (l, ts) -> Lockset.acquire ls (lid l) ~ts)
               Lockset.empty entries))

  let arb_lockset = QCheck.make ~print:(Format.asprintf "%a" Lockset.pp) lockset_gen

  let inter_subset =
    QCheck.Test.make ~name:"intersection is a subset of both operands"
      ~count:300 (QCheck.pair arb_lockset arb_lockset) (fun (a, b) ->
        let i = Lockset.inter_same_thread a b in
        List.for_all (fun l -> Lockset.mem a l && Lockset.mem b l)
          (Lockset.locks i))

  let inter_commutes =
    QCheck.Test.make ~name:"timestamped intersection commutes" ~count:300
      (QCheck.pair arb_lockset arb_lockset) (fun (a, b) ->
        Lockset.equal (Lockset.inter_same_thread a b)
          (Lockset.inter_same_thread b a))

  let self_inter_identity =
    QCheck.Test.make ~name:"ls ∩ ls = ls" ~count:300 arb_lockset (fun a ->
        Lockset.equal (Lockset.inter_same_thread a a) a)

  let disjoint_iff_empty_inter =
    QCheck.Test.make ~name:"disjoint_locks agrees with no-ts intersection"
      ~count:300 (QCheck.pair arb_lockset arb_lockset) (fun (a, b) ->
        Lockset.disjoint_locks a b
        = Lockset.is_empty (Lockset.inter_same_thread_no_ts a b))

  let locks_sorted =
    QCheck.Test.make ~name:"locks are sorted and unique" ~count:300 arb_lockset
      (fun a ->
        let ls = List.map Trace.Lock_id.to_int (Lockset.locks a) in
        ls = List.sort_uniq Int.compare ls)

  let tests =
    [
      Alcotest.test_case "acquire/release" `Quick acquire_release;
      Alcotest.test_case "reacquire keeps outermost ts" `Quick
        reacquire_keeps_outermost_ts;
      Alcotest.test_case "ts-aware intersection" `Quick ts_aware_intersection;
      Alcotest.test_case "disjointness ignores ts" `Quick
        disjointness_ignores_ts;
      QCheck_alcotest.to_alcotest inter_subset;
      QCheck_alcotest.to_alcotest inter_commutes;
      QCheck_alcotest.to_alcotest self_inter_identity;
      QCheck_alcotest.to_alcotest disjoint_iff_empty_inter;
      QCheck_alcotest.to_alcotest locks_sorted;
    ]
end

module Vclock_tests = struct
  open Hawkset

  let paper_example () =
    (* Figure 3's clocks: T1 at (3,0,0) creates T2 which starts at (3,1,0);
       Store1 at (1,0,0) is ordered before T2's accesses; T2 and T3 run
       concurrently. *)
    let v1 = Vclock.tick (Vclock.tick (Vclock.tick Vclock.zero 0) 0) 0 in
    (* (3,0,0) *)
    let v2 = Vclock.tick v1 1 (* (3,1,0) *) in
    let store1 = Vclock.tick Vclock.zero 0 (* (1,0,0) *) in
    Alcotest.(check bool) "store1 ordered before T2" true (Vclock.leq store1 v2);
    Alcotest.(check bool) "store1 not concurrent with T2" false
      (Vclock.concurrent store1 v2);
    let v3 = Vclock.tick (Vclock.tick (Vclock.tick v1 0) 0) 2 in
    (* (5,0,1) *)
    Alcotest.(check bool) "T2 and T3 concurrent" true (Vclock.concurrent v2 v3);
    (* Persist3 at (6,0,0) is concurrent with T3's load at (5,0,1). *)
    let persist3 =
      Vclock.tick (Vclock.tick (Vclock.tick (Vclock.tick v1 0) 0) 0) 0
    in
    Alcotest.(check bool) "Persist3 concurrent with Load2" true
      (Vclock.concurrent persist3 v3)

  let merge_is_join () =
    let a = Vclock.tick (Vclock.tick Vclock.zero 0) 0 in
    let b = Vclock.tick Vclock.zero 1 in
    let m = Vclock.merge a b in
    Alcotest.(check int) "component 0" 2 (Vclock.get m 0);
    Alcotest.(check int) "component 1" 1 (Vclock.get m 1);
    Alcotest.(check bool) "a <= m" true (Vclock.leq a m);
    Alcotest.(check bool) "b <= m" true (Vclock.leq b m)

  let canonical_equality () =
    (* A clock that ticked index 3 and nothing else must equal itself
       regardless of internal widths. *)
    let a = Vclock.tick Vclock.zero 3 in
    let b = Vclock.merge (Vclock.tick Vclock.zero 3) Vclock.zero in
    Alcotest.(check bool) "equal" true (Vclock.equal a b);
    Alcotest.(check int) "same hash" (Vclock.hash a) (Vclock.hash b)

  let clock_gen =
    QCheck.Gen.(
      list_size (int_bound 12) (int_bound 4)
      |> map (fun ticks -> List.fold_left Vclock.tick Vclock.zero ticks))

  let arb_clock = QCheck.make ~print:(Format.asprintf "%a" Vclock.pp) clock_gen

  let leq_reflexive =
    QCheck.Test.make ~name:"leq reflexive" ~count:300 arb_clock (fun a ->
        Vclock.leq a a)

  let leq_antisym =
    QCheck.Test.make ~name:"leq antisymmetric" ~count:300
      (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
        (not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b)

  let leq_transitive =
    QCheck.Test.make ~name:"leq transitive" ~count:300
      (QCheck.triple arb_clock arb_clock arb_clock) (fun (a, b, c) ->
        (not (Vclock.leq a b && Vclock.leq b c)) || Vclock.leq a c)

  let concurrent_symmetric =
    QCheck.Test.make ~name:"concurrent symmetric and irreflexive" ~count:300
      (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
        Vclock.concurrent a b = Vclock.concurrent b a
        && not (Vclock.concurrent a a))

  let trichotomy =
    QCheck.Test.make ~name:"ordered or concurrent" ~count:300
      (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
        Vclock.leq a b || Vclock.leq b a || Vclock.concurrent a b)

  let merge_lattice =
    QCheck.Test.make ~name:"merge is a join (comm/assoc/idem/ub)" ~count:300
      (QCheck.triple arb_clock arb_clock arb_clock) (fun (a, b, c) ->
        Vclock.equal (Vclock.merge a b) (Vclock.merge b a)
        && Vclock.equal
             (Vclock.merge a (Vclock.merge b c))
             (Vclock.merge (Vclock.merge a b) c)
        && Vclock.equal (Vclock.merge a a) a
        && Vclock.leq a (Vclock.merge a b)
        && Vclock.leq b (Vclock.merge a b))

  let tick_strictly_increases =
    QCheck.Test.make ~name:"tick strictly increases" ~count:300
      (QCheck.pair arb_clock (QCheck.int_bound 4)) (fun (a, i) ->
        let b = Vclock.tick a i in
        Vclock.leq a b && (not (Vclock.equal a b)) && not (Vclock.leq b a))

  let tests =
    [
      Alcotest.test_case "paper example (figure 3)" `Quick paper_example;
      Alcotest.test_case "merge is join" `Quick merge_is_join;
      Alcotest.test_case "canonical equality" `Quick canonical_equality;
      QCheck_alcotest.to_alcotest leq_reflexive;
      QCheck_alcotest.to_alcotest leq_antisym;
      QCheck_alcotest.to_alcotest leq_transitive;
      QCheck_alcotest.to_alcotest concurrent_symmetric;
      QCheck_alcotest.to_alcotest trichotomy;
      QCheck_alcotest.to_alcotest merge_lattice;
      QCheck_alcotest.to_alcotest tick_strictly_increases;
    ]
end

(* Trace-building helpers shared by the collector/analysis tests. *)
module Build = struct
  let store ?(t = 1) ?(sz = 8) ?(nt = false) ~line addr =
    Trace.Event.Store
      { tid = tid t; addr; size = sz; site = s "app.ml" line; non_temporal = nt }

  let load ?(t = 2) ?(sz = 8) ~line addr =
    Trace.Event.Load { tid = tid t; addr; size = sz; site = s "app.ml" line }

  let flush ?(t = 1) addr =
    Trace.Event.Flush
      {
        tid = tid t;
        line = Pmem.Layout.line_of addr;
        kind = Trace.Event.Clwb;
        site = s "app.ml" 0;
      }

  let fence ?(t = 1) () =
    Trace.Event.Fence { tid = tid t; site = s "app.ml" 0 }

  let acq ?(t = 1) l =
    Trace.Event.Lock_acquire { tid = tid t; lock = lid l; site = s "app.ml" 0 }

  let rel ?(t = 1) l =
    Trace.Event.Lock_release { tid = tid t; lock = lid l; site = s "app.ml" 0 }

  let create ~parent ~child =
    Trace.Event.Thread_create { parent = tid parent; child = tid child }

  let join ~waiter ~joined =
    Trace.Event.Thread_join { waiter = tid waiter; joined = tid joined }

  let races ?config evs =
    Hawkset.Pipeline.races ?config (Trace.Tracebuf.of_list evs)

  let race_count ?config evs = Hawkset.Report.count (races ?config evs)
end

module Collector_tests = struct
  open Build

  let collect ?irh evs = Hawkset.Collector.collect ?irh (Trace.Tracebuf.of_list evs)

  let window_shapes () =
    let r =
      collect ~irh:false
        [
          store ~line:1 128;
          flush 128;
          fence ();
          store ~line:2 256 (* never persisted *);
        ]
    in
    let all =
      Hawkset.Collector.all_windows r
    in
    Alcotest.(check int) "two windows" 2 (List.length all);
    let kinds =
      List.sort compare
        (List.map (fun w -> w.Hawkset.Access.w_end) all)
    in
    Alcotest.(check bool) "persisted + open" true
      (kinds
      = List.sort compare
          [ Hawkset.Access.Persisted_same_thread; Hawkset.Access.Open_at_exit ])

  let overwrite_closes_window () =
    let r = collect ~irh:false [ store ~line:1 128; store ~line:2 128 ] in
    let all =
      Hawkset.Collector.all_windows r
    in
    let kinds = List.map (fun w -> w.Hawkset.Access.w_end) all in
    Alcotest.(check bool) "one overwritten, one open" true
      (List.sort compare kinds
      = List.sort compare
          [ Hawkset.Access.Overwritten_same_thread; Hawkset.Access.Open_at_exit ])

  let cross_thread_persist_empty_effective () =
    let r =
      collect ~irh:false
        [
          acq ~t:1 7;
          store ~line:1 128;
          rel ~t:1 7;
          flush ~t:2 128;
          fence ~t:2 ();
        ]
    in
    let all =
      Hawkset.Collector.all_windows r
    in
    match all with
    | [ w ] ->
        Alcotest.(check bool) "kind" true
          (w.Hawkset.Access.w_end = Hawkset.Access.Persisted_other_thread);
        let eff =
          Hawkset.Access.Ls_table.get r.Hawkset.Collector.tables.Hawkset.Access.ls
            w.Hawkset.Access.w_eff
        in
        Alcotest.(check bool) "empty effective lockset" true
          (Hawkset.Lockset.is_empty eff)
    | ws -> Alcotest.fail (Printf.sprintf "expected 1 window, got %d" (List.length ws))

  let flush_before_store_does_not_cover () =
    (* flush, then store, then fence: the store is NOT persisted by that
       flush (worst-case cache). Its window stays open. *)
    let r = collect ~irh:false [ flush 128; store ~line:1 128; fence () ] in
    let all =
      Hawkset.Collector.all_windows r
    in
    match all with
    | [ w ] ->
        Alcotest.(check bool) "open" true
          (w.Hawkset.Access.w_end = Hawkset.Access.Open_at_exit)
    | _ -> Alcotest.fail "expected one window"

  let irh_discards_persisted_init () =
    let evs =
      [ store ~t:1 ~line:1 128; flush ~t:1 128; fence ~t:1 (); load ~t:2 ~line:9 128 ]
    in
    let with_irh = collect ~irh:true evs in
    let without = collect ~irh:false evs in
    Alcotest.(check int) "discarded with IRH" 1
      with_irh.Hawkset.Collector.stats.Hawkset.Collector.c_irh_discarded_stores;
    Alcotest.(check int) "no windows left" 0
      with_irh.Hawkset.Collector.stats.Hawkset.Collector.c_windows;
    Alcotest.(check int) "kept without IRH" 1
      without.Hawkset.Collector.stats.Hawkset.Collector.c_windows

  let irh_keeps_unpersisted_init () =
    (* Publish-before-persist: T2 reads before T1's persist completes —
       the §3.1.3 example of why persistency matters for the IRH. *)
    let evs =
      [ store ~t:1 ~line:1 128; load ~t:2 ~line:9 128; flush ~t:1 128;
        fence ~t:1 () ]
    in
    let r = collect ~irh:true evs in
    Alcotest.(check int) "window kept" 1
      r.Hawkset.Collector.stats.Hawkset.Collector.c_windows;
    Alcotest.(check int) "nothing discarded" 0
      r.Hawkset.Collector.stats.Hawkset.Collector.c_irh_discarded_stores

  let irh_drops_first_thread_loads () =
    let evs = [ store ~t:1 ~line:1 128; load ~t:1 ~line:2 128 ] in
    let r = collect ~irh:true evs in
    Alcotest.(check int) "load dropped" 1
      r.Hawkset.Collector.stats.Hawkset.Collector.c_irh_discarded_loads;
    let r' = collect ~irh:false evs in
    Alcotest.(check int) "load kept without IRH" 1
      r'.Hawkset.Collector.stats.Hawkset.Collector.c_load_records

  let dedup_identical_records () =
    let evs =
      List.concat (List.init 50 (fun _ -> [ store ~t:1 ~line:1 128 ]))
      @ List.init 50 (fun _ -> load ~t:2 ~line:2 128)
    in
    let r = collect ~irh:false evs in
    (* 49 identical overwritten windows collapse into 1; the final open one
       is separate. All 50 identical loads collapse into 1. *)
    Alcotest.(check int) "windows deduped" 2
      r.Hawkset.Collector.stats.Hawkset.Collector.c_windows;
    Alcotest.(check int) "loads deduped" 1
      r.Hawkset.Collector.stats.Hawkset.Collector.c_load_records

  let dedup_bounds_hot_words () =
    (* The §4 sharing optimization: a hot word hammered by the same sites
       must keep a bounded record population regardless of repetition —
       the property that keeps Figure 6 near-linear. *)
    let evs n =
      List.concat
        (List.init n (fun i ->
             let t = 1 + (i mod 2) in
             [
               acq ~t 7;
               store ~t ~line:t 128;
               flush ~t 128;
               fence ~t ();
               rel ~t 7;
               load ~t:(3 - t) ~line:(10 + t) 128;
             ]))
    in
    let windows n =
      (collect ~irh:false (evs n)).Hawkset.Collector.stats
        .Hawkset.Collector.c_windows
    in
    Alcotest.(check int) "population independent of repetition" (windows 50)
      (windows 500)

  let interning_shares () =
    let evs =
      List.concat
        (List.init 20 (fun i ->
             [ acq ~t:1 5; store ~line:1 (128 + (64 * i)); rel ~t:1 5 ]))
    in
    let r = collect ~irh:false evs in
    (* Every iteration has a distinct lockset ({L5@ts}) because the clock
       ticks — but the vector clock is shared across all of them. *)
    Alcotest.(check bool) "few vclocks" true
      (r.Hawkset.Collector.stats.Hawkset.Collector.c_vclocks <= 3)

  let tests =
    [
      Alcotest.test_case "window shapes" `Quick window_shapes;
      Alcotest.test_case "overwrite closes window" `Quick
        overwrite_closes_window;
      Alcotest.test_case "cross-thread persist" `Quick
        cross_thread_persist_empty_effective;
      Alcotest.test_case "flush before store" `Quick
        flush_before_store_does_not_cover;
      Alcotest.test_case "IRH discards persisted init" `Quick
        irh_discards_persisted_init;
      Alcotest.test_case "IRH keeps unpersisted init" `Quick
        irh_keeps_unpersisted_init;
      Alcotest.test_case "IRH drops first-thread loads" `Quick
        irh_drops_first_thread_loads;
      Alcotest.test_case "record dedup" `Quick dedup_identical_records;
      Alcotest.test_case "dedup bounds hot words" `Quick dedup_bounds_hot_words;
      Alcotest.test_case "interning shares clocks" `Quick interning_shares;
    ]
end

module Analysis_tests = struct
  open Build

  let unprotected_cross_thread_race () =
    Alcotest.(check int) "race" 1
      (race_count ~config:Hawkset.Pipeline.no_irh
         [ store ~t:1 ~line:10 128; load ~t:2 ~line:20 128 ])

  let same_thread_no_race () =
    Alcotest.(check int) "no race" 0
      (race_count ~config:Hawkset.Pipeline.no_irh
         [ store ~t:1 ~line:10 128; load ~t:1 ~line:20 128 ])

  let different_addresses_no_race () =
    Alcotest.(check int) "no race" 0
      (race_count ~config:Hawkset.Pipeline.no_irh
         [ store ~t:1 ~line:10 128; load ~t:2 ~line:20 256 ])

  let partial_overlap_detected () =
    (* 8-byte store at 124 crosses a word boundary; 4-byte load at 128
       overlaps its tail. *)
    Alcotest.(check int) "race" 1
      (race_count ~config:Hawkset.Pipeline.no_irh
         [ store ~t:1 ~sz:8 ~line:10 124; load ~t:2 ~sz:4 ~line:20 128 ]);
    (* Same word, disjoint bytes: no race. *)
    Alcotest.(check int) "no race" 0
      (race_count ~config:Hawkset.Pipeline.no_irh
         [ store ~t:1 ~sz:4 ~line:10 128; load ~t:2 ~sz:4 ~line:20 132 ])

  let protected_and_persisted_no_race () =
    Alcotest.(check int) "no race" 0
      (race_count ~config:Hawkset.Pipeline.no_irh
         [
           acq ~t:1 7;
           store ~t:1 ~line:10 128;
           flush ~t:1 128;
           fence ~t:1 ();
           rel ~t:1 7;
           acq ~t:2 7;
           load ~t:2 ~line:20 128;
           rel ~t:2 7;
         ])

  let never_persisted_races_despite_lock () =
    (* Both accesses hold lock A but the store is never persisted: a crash
       after the load loses the value the load acted on (Definition 1). *)
    Alcotest.(check int) "race" 1
      (race_count ~config:Hawkset.Pipeline.no_irh
         [
           acq ~t:1 7;
           store ~t:1 ~line:10 128;
           rel ~t:1 7;
           acq ~t:2 7;
           load ~t:2 ~line:20 128;
           rel ~t:2 7;
         ])

  let hb_filter_removes_ordered_pairs () =
    (* T1 stores and persists before creating T2: ordered, no race even
       without locks (Figure 3). *)
    Alcotest.(check int) "no race" 0
      (race_count ~config:Hawkset.Pipeline.no_irh
         [
           store ~t:1 ~line:10 128;
           flush ~t:1 128;
           fence ~t:1 ();
           create ~parent:1 ~child:2;
           load ~t:2 ~line:20 128;
         ]);
    (* Without the vector-clock filter the same trace false-positives. *)
    Alcotest.(check int) "ablation: FP" 1
      (race_count
         ~config:{ Hawkset.Pipeline.no_irh with vector_clocks = false }
         [
           store ~t:1 ~line:10 128;
           flush ~t:1 128;
           fence ~t:1 ();
           create ~parent:1 ~child:2;
           load ~t:2 ~line:20 128;
         ])

  let persist_vclock_keeps_late_window () =
    (* Figure 3's Store3/Persist3: the store happens before T2 is created
       but the persist completes after, so T2's load can still observe the
       unpersisted value — must be reported. *)
    Alcotest.(check int) "race" 1
      (race_count ~config:Hawkset.Pipeline.no_irh
         [
           store ~t:1 ~line:10 128;
           create ~parent:1 ~child:2;
           load ~t:2 ~line:20 128;
           flush ~t:1 128;
           fence ~t:1 ();
         ])

  let join_ordered_load_of_unpersisted_store () =
    (* T2 stores and never persists; T1 joins T2 and then loads. The load
       is ordered after the store, but the value is {e guaranteed} not
       persisted at load time — by Definition 1 this is reported: the
       load's side effects can survive a crash that loses the store. *)
    Alcotest.(check int) "reported (Definition 1)" 1
      (race_count ~config:Hawkset.Pipeline.no_irh
         [
           create ~parent:1 ~child:2;
           store ~t:2 ~line:10 128;
           join ~waiter:1 ~joined:2;
           load ~t:1 ~line:20 128;
         ]);
    (* Once the store is persisted before the join, the same shape is
       safe: the persist happens-before the load. *)
    Alcotest.(check int) "persisted before join: safe" 0
      (race_count ~config:Hawkset.Pipeline.no_irh
         [
           create ~parent:1 ~child:2;
           store ~t:2 ~line:10 128;
           flush ~t:2 128;
           fence ~t:2 ();
           join ~waiter:1 ~joined:2;
           load ~t:1 ~line:20 128;
         ])

  let report_aggregation () =
    let r =
      races ~config:Hawkset.Pipeline.no_irh
        [
          store ~t:1 ~line:10 128;
          store ~t:1 ~line:10 192;
          load ~t:2 ~line:20 128;
          load ~t:2 ~line:20 192;
        ]
    in
    (* Two witnessing address pairs, one site pair. *)
    Alcotest.(check int) "one report" 1 (Hawkset.Report.count r);
    match Hawkset.Report.sorted r with
    | [ race ] ->
        Alcotest.(check int) "occurrences" 2 race.Hawkset.Report.occurrences;
        Alcotest.(check bool) "site pair" true
          (Hawkset.Report.mem r ~store_loc:"app.ml:10" ~load_loc:"app.ml:20")
    | _ -> Alcotest.fail "expected exactly one report"

  let cas_load_participates () =
    (* The load half of another thread's CAS can observe unpersisted data:
       represent it as a plain load in the trace. *)
    Alcotest.(check int) "race" 1
      (race_count ~config:Hawkset.Pipeline.no_irh
         [ store ~t:1 ~line:10 128; load ~t:2 ~line:21 128 ])

  let store_store_not_reported () =
    Alcotest.(check int) "no store-store reports" 0
      (race_count ~config:Hawkset.Pipeline.no_irh
         [ store ~t:1 ~line:10 128; store ~t:2 ~line:11 128 ])

  let json_output () =
    let r =
      races ~config:Hawkset.Pipeline.no_irh
        [ store ~t:1 ~line:10 128; load ~t:2 ~line:20 128 ]
    in
    let j = Hawkset.Report.to_json r in
    Alcotest.(check bool) "array" true
      (String.length j > 2 && j.[0] = '[' && j.[String.length j - 1] = ']');
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("contains " ^ needle) true
          (let re = Str.regexp_string needle in
           try
             ignore (Str.search_forward re j 0);
             true
           with Not_found -> false))
      [ {|"file":"app.ml"|}; {|"line":10|}; {|"line":20|};
        {|"window_end":"never_persisted"|}; {|"occurrences":1|} ];
    Alcotest.(check string) "empty report" "[]"
      (Hawkset.Report.to_json Hawkset.Report.empty)

  let pipeline_stats_exposed () =
    let res =
      Hawkset.Pipeline.run ~config:Hawkset.Pipeline.no_irh
        (Trace.Tracebuf.of_list [ store ~t:1 ~line:10 128; load ~t:2 ~line:20 128 ])
    in
    Alcotest.(check bool) "examined pairs" true (res.Hawkset.Pipeline.pairs_examined >= 1);
    Alcotest.(check bool) "time measured" true
      (res.Hawkset.Pipeline.analysis_seconds >= 0.0);
    Alcotest.(check int) "stores counted" 1
      res.Hawkset.Pipeline.collector_stats.Hawkset.Collector.c_stores

  let tests =
    [
      Alcotest.test_case "unprotected cross-thread race" `Quick
        unprotected_cross_thread_race;
      Alcotest.test_case "same thread: no race" `Quick same_thread_no_race;
      Alcotest.test_case "different addresses: no race" `Quick
        different_addresses_no_race;
      Alcotest.test_case "partial overlap" `Quick partial_overlap_detected;
      Alcotest.test_case "protected and persisted: no race" `Quick
        protected_and_persisted_no_race;
      Alcotest.test_case "never persisted races despite lock" `Quick
        never_persisted_races_despite_lock;
      Alcotest.test_case "HB filter removes ordered pairs" `Quick
        hb_filter_removes_ordered_pairs;
      Alcotest.test_case "persist vclock keeps late window" `Quick
        persist_vclock_keeps_late_window;
      Alcotest.test_case "join-ordered unpersisted load" `Quick
        join_ordered_load_of_unpersisted_store;
      Alcotest.test_case "report aggregation" `Quick report_aggregation;
      Alcotest.test_case "cas load participates" `Quick cas_load_participates;
      Alcotest.test_case "store-store not reported" `Quick
        store_store_not_reported;
      Alcotest.test_case "json output" `Quick json_output;
      Alcotest.test_case "pipeline stats" `Quick pipeline_stats_exposed;
    ]
end

module Report_tests = struct
  let has ~needle hay =
    let re = Str.regexp_string needle in
    try
      ignore (Str.search_forward re hay 0);
      true
    with Not_found -> false

  let add r ~store_line ~load_line ~store_tid ~load_tid ~addr =
    Hawkset.Report.add r
      ~store_site:(s "app.ml" store_line)
      ~load_site:(s "app.ml" load_line)
      ~store_tid ~load_tid ~addr ~window_end:Hawkset.Access.Open_at_exit

  (* Parse the emitted JSON back (string-level): every report's fields are
     recoverable, and merged pairs surface their occurrence count. *)
  let json_round_trip () =
    let r = Hawkset.Report.empty in
    let r = add r ~store_line:10 ~load_line:20 ~store_tid:1 ~load_tid:2 ~addr:128 in
    let r = add r ~store_line:10 ~load_line:20 ~store_tid:1 ~load_tid:2 ~addr:136 in
    let r = add r ~store_line:30 ~load_line:40 ~store_tid:3 ~load_tid:4 ~addr:192 in
    let j = Hawkset.Report.to_json r in
    (* One "occurrences" field per serialized report object. *)
    let count_needle needle =
      let re = Str.regexp_string needle in
      let rec go i acc =
        match Str.search_forward re j i with
        | p -> go (p + String.length needle) (acc + 1)
        | exception Not_found -> acc
      in
      go 0 0
    in
    Alcotest.(check int) "two serialized reports" 2
      (count_needle {|"occurrences"|});
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("round-trips " ^ needle) true (has ~needle j))
      [
        {|"line":10|}; {|"line":20|}; {|"line":30|}; {|"line":40|};
        {|"occurrences":2|}; {|"occurrences":1|};
        {|"window_end":"never_persisted"|}; {|"store_tid":1|}; {|"load_tid":4|};
      ]

  (* Random add sequences: merging never changes the two conservation
     laws — distinct site pairs = count, total occurrences = adds. *)
  let merge_invariants =
    let gen =
      QCheck.(
        list_of_size Gen.(int_range 0 40)
          (quad (int_range 1 5) (int_range 1 5) (int_range 1 3) (int_range 1 3)))
    in
    QCheck.Test.make ~name:"add preserves count/occurrence invariants"
      ~count:200 gen (fun adds ->
        let final, ok =
          List.fold_left
            (fun (r, ok) (sl, ll, st, lt) ->
              let before = Hawkset.Report.count r in
              let r = add r ~store_line:sl ~load_line:ll ~store_tid:st
                  ~load_tid:lt ~addr:128 in
              let after = Hawkset.Report.count r in
              (r, ok && after >= before && after <= before + 1))
            (Hawkset.Report.empty, true)
            adds
        in
        let distinct_pairs =
          List.sort_uniq compare (List.map (fun (sl, ll, _, _) -> (sl, ll)) adds)
        in
        ok
        && Hawkset.Report.count final = List.length distinct_pairs
        && List.fold_left
             (fun acc race -> acc + race.Hawkset.Report.occurrences)
             0 final
           = List.length adds
        && List.for_all
             (fun (sl, ll) ->
               Hawkset.Report.mem final
                 ~store_loc:(Printf.sprintf "app.ml:%d" sl)
                 ~load_loc:(Printf.sprintf "app.ml:%d" ll))
             distinct_pairs)

  let tests =
    [
      Alcotest.test_case "json round-trip" `Quick json_round_trip;
      QCheck_alcotest.to_alcotest merge_invariants;
    ]
end

module Reference_tests = struct
  (* Random well-formed traces: a few threads, each running a random
     script of critical sections, PM accesses and persists over a small
     address space; scripts are interleaved at random. The optimized
     analysis must compute exactly the same race set as the literal
     Algorithm 1 transcription. *)

  type op =
    | O_store of int * int
    | O_load of int * int
    | O_persist of int
    | O_locked of int * op list

  let rec gen_op depth =
    QCheck.Gen.(
      let addr = map (fun i -> 128 + (8 * i)) (int_bound 5) in
      let leaf =
        frequency
          [
            (4, map2 (fun a l -> O_store (a, l)) addr (int_range 1 30));
            (4, map2 (fun a l -> O_load (a, l)) addr (int_range 31 60));
            (2, map (fun a -> O_persist a) addr);
          ]
      in
      if depth = 0 then leaf
      else
        frequency
          [
            (8, leaf);
            ( 2,
              map2
                (fun lock body -> O_locked (lock, body))
                (int_bound 2)
                (list_size (int_bound 4) (gen_op (depth - 1))) );
          ])

  let gen_script = QCheck.Gen.(list_size (int_range 1 12) (gen_op 2))

  (* Expand one thread's script into its event sequence. *)
  let rec expand ~t ops =
    let tid = Trace.Tid.of_int t in
    let file = "rnd.ml" in
    List.concat_map
      (fun op ->
        match op with
        | O_store (addr, l) ->
            [ Trace.Event.Store
                { tid; addr; size = 8; site = Trace.Site.v file ((100 * t) + l);
                  non_temporal = false } ]
        | O_load (addr, l) ->
            [ Trace.Event.Load
                { tid; addr; size = 8; site = Trace.Site.v file ((100 * t) + l) } ]
        | O_persist addr ->
            [ Trace.Event.Flush
                { tid; line = Pmem.Layout.line_of addr; kind = Trace.Event.Clwb;
                  site = Trace.Site.v file 0 };
              Trace.Event.Fence { tid; site = Trace.Site.v file 0 } ]
        | O_locked (lock, body) ->
            (Trace.Event.Lock_acquire
               { tid; lock = Trace.Lock_id.of_int lock;
                 site = Trace.Site.v file 0 }
            :: expand ~t body)
            @ [ Trace.Event.Lock_release
                  { tid; lock = Trace.Lock_id.of_int lock;
                    site = Trace.Site.v file 0 } ])
      ops

  let gen_trace =
    QCheck.Gen.(
      int_range 2 4 >>= fun nthreads ->
      list_repeat nthreads gen_script >>= fun scripts ->
      int >>= fun shuffle_seed ->
      let queues =
        List.mapi (fun i script -> ref (expand ~t:(i + 1) script)) scripts
      in
      let creates =
        List.init nthreads (fun i ->
            Trace.Event.Thread_create
              { parent = Trace.Tid.main; child = Trace.Tid.of_int (i + 1) })
      in
      let prng = Machine.Prng.create shuffle_seed in
      let out = ref (List.rev creates) in
      let rec drain () =
        let nonempty = List.filter (fun q -> !q <> []) queues in
        match nonempty with
        | [] -> ()
        | qs ->
            let q = List.nth qs (Machine.Prng.int prng (List.length qs)) in
            (match !q with
            | ev :: rest ->
                out := ev :: !out;
                q := rest
            | [] -> ());
            drain ()
      in
      drain ();
      let joins =
        List.init nthreads (fun i ->
            Trace.Event.Thread_join
              { waiter = Trace.Tid.main; joined = Trace.Tid.of_int (i + 1) })
      in
      return (Trace.Tracebuf.of_list (List.rev !out @ joins)))

  let arb_trace =
    QCheck.make
      ~print:(fun t ->
        String.concat "\n"
          (List.map Trace.Trace_io.event_to_line (Trace.Tracebuf.to_list t)))
      gen_trace

  let equivalence irh =
    QCheck.Test.make
      ~name:
        (Printf.sprintf "optimized analysis == literal Algorithm 1 (irh=%b)"
           irh)
      ~count:300 arb_trace
      (fun trace ->
        let collected = Hawkset.Collector.collect ~irh trace in
        (* Full-JSON equality: same races, same occurrence counts, same
           witnesses, same order — not just the same (store, load) set. *)
        Hawkset.Report.to_json (Hawkset.Analysis.analyse collected)
        = Hawkset.Report.to_json (Hawkset.Reference.analyse collected))

  let sanity () =
    (* The generator does produce racy traces sometimes. *)
    let prng = Random.State.make [| 7 |] in
    let some_races = ref false in
    for _ = 1 to 60 do
      let trace = QCheck.Gen.generate1 ~rand:prng gen_trace in
      if
        Hawkset.Report.count
          (Hawkset.Pipeline.races ~config:Hawkset.Pipeline.no_irh trace)
        > 0
      then some_races := true
    done;
    Alcotest.(check bool) "generator reaches racy traces" true !some_races

  let tests =
    [
      Alcotest.test_case "generator sanity" `Quick sanity;
      QCheck_alcotest.to_alcotest (equivalence true);
      QCheck_alcotest.to_alcotest (equivalence false);
    ]
end

module Eadr_tests = struct
  open Build

  let fig1c =
    [ acq ~t:1 7; store ~t:1 ~line:1 128; rel ~t:1 7 ]
    @ [ acq ~t:2 7; load ~t:2 ~line:2 128; rel ~t:2 7 ]
    @ [ flush ~t:1 128; fence ~t:1 () ]

  let eadr_silences_everything () =
    Alcotest.(check int) "volatile cache: race" 1
      (race_count ~config:Hawkset.Pipeline.no_irh fig1c);
    Alcotest.(check int) "eADR: no race" 0
      (race_count
         ~config:{ Hawkset.Pipeline.no_irh with eadr = true }
         fig1c);
    (* Even a store with no persist at all is durable under eADR. *)
    Alcotest.(check int) "missing persist: silent too" 0
      (race_count
         ~config:{ Hawkset.Pipeline.no_irh with eadr = true }
         [ store ~t:1 ~line:1 128; load ~t:2 ~line:2 128 ])

  let eadr_heap_crash_keeps_stores () =
    let h = Pmem.Heap.create ~eadr:true ~size:(1 lsl 12) () in
    Pmem.Heap.write_i64 h 128 42L;
    Pmem.Heap.note_store h ~tid:Trace.Tid.main ~addr:128 ~size:8
      ~non_temporal:false;
    Alcotest.(check bool) "immediately persisted" true
      (Pmem.Heap.persisted_range h ~addr:128 ~size:8);
    Alcotest.(check int64) "crash image has it" 42L
      (Bytes.get_int64_le (Pmem.Heap.crash_image h) 128);
    Alcotest.(check bool) "no dirty conflicts" true
      (Pmem.Heap.dirty_conflict h ~tid:(Trace.Tid.of_int 1) ~addr:128 ~size:8
      = None)

  let tests =
    [
      Alcotest.test_case "eADR silences the bug class" `Quick
        eadr_silences_everything;
      Alcotest.test_case "eADR heap crash semantics" `Quick
        eadr_heap_crash_keeps_stores;
    ]
end

module Truncation_tests = struct
  (* The degradation contract, pinned down: a pipeline cut by a budget or
     deadline still returns a result, and says exactly what it dropped. *)
  let app_trace ops =
    match Pmapps.Registry.find "fast-fair" with
    | Some e ->
        (e.Pmapps.Registry.run ~seed:42 ~ops:(Pmapps.Registry.clamp_ops e ops) ())
          .Machine.Sched.trace
    | None -> Alcotest.fail "fast-fair not registered"

  let tiny_event_budget () =
    let t = app_trace 1_000 in
    let total = Trace.Tracebuf.length t in
    let r =
      Hawkset.Pipeline.run
        ~config:
          { Hawkset.Pipeline.default with Hawkset.Pipeline.event_budget = Some 3 }
        t
    in
    match r.Hawkset.Pipeline.truncated with
    | [ tr ] ->
        Alcotest.(check string) "stage" "collect" tr.Hawkset.Pipeline.trunc_stage;
        Alcotest.(check string)
          "reason" "event_budget" tr.Hawkset.Pipeline.trunc_reason;
        Alcotest.(check int) "done" 3 tr.Hawkset.Pipeline.trunc_done;
        Alcotest.(check int) "total" total tr.Hawkset.Pipeline.trunc_total
    | l -> Alcotest.failf "expected exactly one truncation, got %d" (List.length l)

  let expired_collect_deadline () =
    let t = app_trace 1_000 in
    let total = Trace.Tracebuf.length t in
    let r =
      Hawkset.Pipeline.run
        ~config:
          {
            Hawkset.Pipeline.default with
            Hawkset.Pipeline.collect_deadline_s = Some 0.0;
          }
        t
    in
    match
      List.filter
        (fun (tr : Hawkset.Pipeline.truncation) ->
          tr.Hawkset.Pipeline.trunc_stage = "collect")
        r.Hawkset.Pipeline.truncated
    with
    | [ tr ] ->
        Alcotest.(check string) "reason" "deadline" tr.Hawkset.Pipeline.trunc_reason;
        Alcotest.(check int) "total" total tr.Hawkset.Pipeline.trunc_total;
        Alcotest.(check bool) "partial" true
          (tr.Hawkset.Pipeline.trunc_done < total)
    | l ->
        Alcotest.failf "expected exactly one collect truncation, got %d"
          (List.length l)

  let expired_analyse_deadline () =
    let t = app_trace 1_000 in
    let r =
      Hawkset.Pipeline.run
        ~config:
          {
            Hawkset.Pipeline.default with
            Hawkset.Pipeline.analyse_deadline_s = Some 0.0;
          }
        t
    in
    match
      List.filter
        (fun (tr : Hawkset.Pipeline.truncation) ->
          tr.Hawkset.Pipeline.trunc_stage = "analyse")
        r.Hawkset.Pipeline.truncated
    with
    | [ tr ] ->
        Alcotest.(check string) "reason" "deadline" tr.Hawkset.Pipeline.trunc_reason;
        Alcotest.(check bool) "partial" true
          (tr.Hawkset.Pipeline.trunc_done < tr.Hawkset.Pipeline.trunc_total);
        Alcotest.(check bool) "total positive" true
          (tr.Hawkset.Pipeline.trunc_total > 0)
    | l ->
        Alcotest.failf "expected exactly one analyse truncation, got %d"
          (List.length l)

  let tests =
    [
      Alcotest.test_case "tiny event budget" `Quick tiny_event_budget;
      Alcotest.test_case "expired collect deadline" `Quick
        expired_collect_deadline;
      Alcotest.test_case "expired analyse deadline" `Quick
        expired_analyse_deadline;
    ]
end

let () =
  Alcotest.run "hawkset"
    [
      ("lockset", Lockset_tests.tests);
      ("vclock", Vclock_tests.tests);
      ("collector", Collector_tests.tests);
      ("analysis", Analysis_tests.tests);
      ("report", Report_tests.tests);
      ("reference", Reference_tests.tests);
      ("eadr", Eadr_tests.tests);
      ("truncation", Truncation_tests.tests);
    ]
