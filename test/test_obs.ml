(* Unit tests for the observability library: metric cells, registry
   find-or-create and reset semantics, span nesting, delta arithmetic,
   logger gating, JSON emission and manifest round-trips. *)

module Mini_json = Test_util.Mini_json

(* --- Json ------------------------------------------------------------- *)

module Json_tests = struct
  let escaping () =
    Alcotest.(check string)
      "quotes and backslashes" {|"a\"b\\c"|}
      (Obs.Json.str {|a"b\c|});
    Alcotest.(check string)
      "control chars" "\"x\\ny\"" (Obs.Json.str "x\ny")

  let scalars () =
    Alcotest.(check string) "int" "42" (Obs.Json.int 42);
    Alcotest.(check string) "bool" "true" (Obs.Json.bool true);
    Alcotest.(check string) "nan is null" "null" (Obs.Json.float Float.nan)

  let containers () =
    Alcotest.(check string)
      "array" "[1,2]"
      (Obs.Json.arr [ Obs.Json.int 1; Obs.Json.int 2 ]);
    Alcotest.(check string)
      "object" {|{"a":1}|}
      (Obs.Json.obj [ ("a", Obs.Json.int 1) ])

  let tests =
    [
      Alcotest.test_case "escaping" `Quick escaping;
      Alcotest.test_case "scalars" `Quick scalars;
      Alcotest.test_case "containers" `Quick containers;
    ]
end

(* --- Metric ----------------------------------------------------------- *)

module Metric_tests = struct
  let counter () =
    let c = Obs.Metric.counter "t" in
    Obs.Metric.incr c;
    Obs.Metric.add c 4;
    Alcotest.(check int) "value" 5 (Obs.Metric.value c);
    Obs.Metric.reset_counter c;
    Alcotest.(check int) "reset" 0 (Obs.Metric.value c)

  let histogram_cells () =
    let h = Obs.Metric.histogram ~bounds:[| 1; 4 |] "h" in
    List.iter (Obs.Metric.observe h) [ 0; 1; 3; 9 ];
    Alcotest.(check (list (pair string int)))
      "cells"
      [
        ("le_1", 2); ("le_4", 1); ("overflow", 1); ("count", 4); ("sum", 13);
        ("max", 9);
      ]
      (Obs.Metric.cells h)

  let tests =
    [
      Alcotest.test_case "counter" `Quick counter;
      Alcotest.test_case "histogram cells" `Quick histogram_cells;
    ]
end

(* --- Registry --------------------------------------------------------- *)

module Registry_tests = struct
  let find_or_create () =
    let r = Obs.Registry.create () in
    let a = Obs.Registry.counter ~registry:r "x" in
    let b = Obs.Registry.counter ~registry:r "x" in
    Obs.Metric.incr a;
    Obs.Metric.incr b;
    (* Same name, same cell. *)
    Alcotest.(check (list (pair string int)))
      "snapshot" [ ("x", 2) ]
      (Obs.Registry.counters r)

  let reset_keeps_handles () =
    let r = Obs.Registry.create () in
    let c = Obs.Registry.counter ~registry:r "x" in
    Obs.Metric.add c 7;
    Obs.Registry.reset r;
    Alcotest.(check int) "zeroed" 0 (Obs.Metric.value c);
    Obs.Metric.incr c;
    Alcotest.(check (list (pair string int)))
      "handle still registered" [ ("x", 1) ]
      (Obs.Registry.counters r)

  let span_nesting () =
    let r = Obs.Registry.create () in
    let fake = ref 0.0 in
    Obs.Clock.set_source (fun () ->
        fake := !fake +. 0.5;
        !fake);
    Fun.protect
      ~finally:(fun () -> Obs.Clock.set_source Unix.gettimeofday)
      (fun () ->
        Obs.Registry.with_span ~registry:r "run" (fun () ->
            Obs.Registry.with_span ~registry:r "collect" (fun () -> ()));
        let spans = Obs.Registry.spans r in
        Alcotest.(check (list string))
          "paths are slash-joined" [ "run"; "run/collect" ]
          (List.map fst spans);
        List.iter
          (fun (_, (count, seconds)) ->
            Alcotest.(check int) "count" 1 count;
            Alcotest.(check bool) "positive" true (seconds > 0.))
          spans)

  let delta () =
    Alcotest.(check (list (pair string int)))
      "subtracts before, keeps new keys"
      [ ("a", 2); ("b", 5) ]
      (Obs.Registry.delta
         ~before:[ ("a", 3); ("stale", 1) ]
         ~after:[ ("a", 5); ("b", 5) ])

  let tests =
    [
      Alcotest.test_case "find-or-create" `Quick find_or_create;
      Alcotest.test_case "reset keeps handles" `Quick reset_keeps_handles;
      Alcotest.test_case "span nesting" `Quick span_nesting;
      Alcotest.test_case "delta" `Quick delta;
    ]
end

(* --- Buffer ----------------------------------------------------------- *)

module Buffer_tests = struct
  let accumulate_and_flush () =
    let r = Obs.Registry.create () in
    let b = Obs.Buffer.create ~registry:r () in
    let x = Obs.Buffer.cell b "x" in
    let y = Obs.Buffer.cell b "y" in
    Obs.Buffer.incr x;
    Obs.Buffer.add x 4;
    Obs.Buffer.add y 2;
    Alcotest.(check int) "buffered value" 5 (Obs.Buffer.value x);
    Alcotest.(check (list (pair string int)))
      "pending cells sorted" [ ("x", 5); ("y", 2) ]
      (Obs.Buffer.cells b);
    Alcotest.(check (list (pair string int)))
      "registry untouched before flush" []
      (Obs.Registry.counters r);
    Obs.Buffer.flush b;
    Alcotest.(check (list (pair string int)))
      "flush publishes" [ ("x", 5); ("y", 2) ]
      (Obs.Registry.counters r);
    Alcotest.(check int) "cells zeroed" 0 (Obs.Buffer.value x);
    (* Flushing adds: a second round accumulates on top, so flush order of
       several buffers never changes the totals. *)
    Obs.Buffer.incr x;
    Obs.Buffer.flush b;
    Alcotest.(check (list (pair string int)))
      "second flush adds" [ ("x", 6); ("y", 2) ]
      (Obs.Registry.counters r)

  let same_name_same_cell () =
    let b = Obs.Buffer.create ~registry:(Obs.Registry.create ()) () in
    Obs.Buffer.incr (Obs.Buffer.cell b "x");
    Obs.Buffer.incr (Obs.Buffer.cell b "x");
    Alcotest.(check int) "one cell" 2 (Obs.Buffer.value (Obs.Buffer.cell b "x"))

  let tests =
    [
      Alcotest.test_case "accumulate and flush" `Quick accumulate_and_flush;
      Alcotest.test_case "same name, same cell" `Quick same_name_same_cell;
    ]
end

(* --- Logger ----------------------------------------------------------- *)

module Logger_tests = struct
  let gating () =
    let seen = ref [] in
    let old = Obs.Logger.level () in
    Obs.Logger.set_sink (fun _ section msg -> seen := (section, msg) :: !seen);
    Fun.protect
      ~finally:(fun () ->
        Obs.Logger.set_level old;
        Obs.Logger.set_sink (fun _ _ _ -> ()))
      (fun () ->
        Obs.Logger.set_level Obs.Logger.Info;
        Obs.Logger.debug ~section:"s" (fun () ->
            Alcotest.fail "debug thunk forced below level");
        Obs.Logger.info ~section:"s" (fun () -> "hello");
        Alcotest.(check (list (pair string string)))
          "only info delivered" [ ("s", "hello") ] !seen;
        Alcotest.(check bool) "enabled info" true
          (Obs.Logger.enabled Obs.Logger.Info);
        Alcotest.(check bool) "disabled debug" false
          (Obs.Logger.enabled Obs.Logger.Debug))

  let level_names () =
    List.iter
      (fun l ->
        Alcotest.(check bool)
          "round-trips" true
          (Obs.Logger.level_of_string (Obs.Logger.level_name l) = Some l))
      [
        Obs.Logger.Quiet; Obs.Logger.Error; Obs.Logger.Warn; Obs.Logger.Info;
        Obs.Logger.Debug;
      ]

  let tests =
    [
      Alcotest.test_case "gating" `Quick gating;
      Alcotest.test_case "level names" `Quick level_names;
    ]
end

(* --- Manifest --------------------------------------------------------- *)

module Manifest_tests = struct
  let json_shape () =
    let m =
      Obs.Manifest.make
        ~labels:[ ("app", "fast-fair") ]
        ~counters:[ ("collector.events", 12) ]
        ~stages:
          [
            {
              Obs.Manifest.stage_name = "run/collect";
              stage_count = 1;
              stage_seconds = 0.25;
            };
          ]
        ~gauges:[ ("peak_live_mb", 1.5) ]
        ()
    in
    (* Parse the emitted JSON back and assert on structure, not on
       substrings of the serialization. *)
    let j = Mini_json.parse (Obs.Manifest.to_json m) in
    Alcotest.(check string)
      "schema" "hawkset.run_manifest/1"
      (Mini_json.str_mem "schema" j);
    Alcotest.(check string)
      "app label" "fast-fair"
      (Mini_json.str_mem "app" (Mini_json.member "labels" j));
    Alcotest.(check int)
      "collector.events counter" 12
      (int_of_float
         (Mini_json.num_mem "collector.events" (Mini_json.member "counters" j)));
    (match Mini_json.to_list (Mini_json.member "stages" j) with
    | [ stage ] ->
        Alcotest.(check string)
          "stage name" "run/collect"
          (Mini_json.str_mem "name" stage);
        Alcotest.(check (float 1e-9))
          "stage seconds" 0.25
          (Mini_json.num_mem "seconds" stage)
    | stages -> Alcotest.fail (Printf.sprintf "%d stages" (List.length stages)));
    Alcotest.(check bool)
      "peak_live_mb gauge present" true
      (Mini_json.member_opt "peak_live_mb" (Mini_json.member "gauges" j)
      <> None);
    Alcotest.(check (option int))
      "counter accessor" (Some 12)
      (Obs.Manifest.counter m "collector.events");
    Alcotest.(check (option string))
      "label accessor" (Some "fast-fair")
      (Obs.Manifest.label m "app")

  let counters_json_excludes_measurements () =
    let m =
      Obs.Manifest.make
        ~counters:[ ("a", 1) ]
        ~gauges:[ ("seconds", 3.2) ]
        ()
    in
    let j = Mini_json.parse (Obs.Manifest.counters_json m) in
    Alcotest.(check int)
      "has counters" 1
      (int_of_float (Mini_json.num_mem "a" j));
    Alcotest.(check (list string))
      "counters only — no gauge keys" [ "a" ] (Mini_json.keys j)

  let of_registry () =
    let r = Obs.Registry.create () in
    Obs.Metric.add (Obs.Registry.counter ~registry:r "c") 2;
    Obs.Metric.observe (Obs.Registry.histogram ~registry:r "h") 3;
    Obs.Registry.with_span ~registry:r "s" (fun () -> ());
    let m = Obs.Manifest.of_registry ~extra_gauges:[ ("g", 1.0) ] r in
    Alcotest.(check (option int)) "counter" (Some 2) (Obs.Manifest.counter m "c");
    Alcotest.(check bool) "histogram present" true
      (List.mem_assoc "h" m.Obs.Manifest.histograms);
    Alcotest.(check (list string))
      "span stage" [ "s" ]
      (List.map (fun s -> s.Obs.Manifest.stage_name) m.Obs.Manifest.stages);
    Alcotest.(check (option (float 0.0))) "gauge" (Some 1.0)
      (Obs.Manifest.gauge m "g")

  let tests =
    [
      Alcotest.test_case "json shape" `Quick json_shape;
      Alcotest.test_case "counters_json excludes measurements" `Quick
        counters_json_excludes_measurements;
      Alcotest.test_case "of_registry" `Quick of_registry;
    ]
end

let () =
  Alcotest.run "obs"
    [
      ("json", Json_tests.tests);
      ("metric", Metric_tests.tests);
      ("registry", Registry_tests.tests);
      ("buffer", Buffer_tests.tests);
      ("logger", Logger_tests.tests);
      ("manifest", Manifest_tests.tests);
    ]
