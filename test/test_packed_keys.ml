(* Differential tests for the packed-int key representations: the packed
   collector dedup ([`Packed] vs the tuple-keyed [`Tuple] reference path)
   and the packed analysis memo must be invisible — byte-identical
   records, reports, stats and counter snapshots on random traces — and
   the packers themselves must be injective inside their field widths and
   refuse (spill / raise) outside them. *)

let with_counters f =
  Obs.Registry.reset Obs.Registry.global;
  let x = f () in
  (x, Obs.Registry.counters Obs.Registry.global)

(* --- random traces ---------------------------------------------------- *)

(* Like test_par_analysis's generator but nastier for key packing: more
   threads, unaligned multi-byte accesses that straddle words (so one
   record registers under several dedup tables) and a wider site space. *)
module Gen = struct
  type op =
    | O_store of int * int * int (* addr, size, line *)
    | O_load of int * int * int
    | O_persist of int
    | O_locked of int * op list

  let rec gen_op depth =
    QCheck.Gen.(
      let addr = map (fun i -> 128 + i) (int_bound 60) in
      let size = int_range 1 12 in
      let leaf =
        frequency
          [
            (4, map3 (fun a s l -> O_store (a, s, l)) addr size (int_range 1 40));
            (4, map3 (fun a s l -> O_load (a, s, l)) addr size (int_range 41 80));
            (2, map (fun a -> O_persist a) addr);
          ]
      in
      if depth = 0 then leaf
      else
        frequency
          [
            (8, leaf);
            ( 2,
              map2
                (fun lock body -> O_locked (lock, body))
                (int_bound 3)
                (list_size (int_bound 4) (gen_op (depth - 1))) );
          ])

  let gen_script = QCheck.Gen.(list_size (int_range 1 14) (gen_op 2))

  let rec expand ~t ops =
    let tid = Trace.Tid.of_int t in
    let file = "pk.ml" in
    List.concat_map
      (fun op ->
        match op with
        | O_store (addr, size, l) ->
            [ Trace.Event.Store
                { tid; addr; size; site = Trace.Site.v file ((100 * t) + l);
                  non_temporal = false } ]
        | O_load (addr, size, l) ->
            [ Trace.Event.Load
                { tid; addr; size; site = Trace.Site.v file ((100 * t) + l) } ]
        | O_persist addr ->
            [ Trace.Event.Flush
                { tid; line = Pmem.Layout.line_of addr; kind = Trace.Event.Clwb;
                  site = Trace.Site.v file 0 };
              Trace.Event.Fence { tid; site = Trace.Site.v file 0 } ]
        | O_locked (lock, body) ->
            (Trace.Event.Lock_acquire
               { tid; lock = Trace.Lock_id.of_int lock;
                 site = Trace.Site.v file 0 }
            :: expand ~t body)
            @ [ Trace.Event.Lock_release
                  { tid; lock = Trace.Lock_id.of_int lock;
                    site = Trace.Site.v file 0 } ])
      ops

  let gen_trace =
    QCheck.Gen.(
      int_range 2 5 >>= fun nthreads ->
      list_repeat nthreads gen_script >>= fun scripts ->
      int >>= fun shuffle_seed ->
      let queues =
        List.mapi (fun i script -> ref (expand ~t:(i + 1) script)) scripts
      in
      let creates =
        List.init nthreads (fun i ->
            Trace.Event.Thread_create
              { parent = Trace.Tid.main; child = Trace.Tid.of_int (i + 1) })
      in
      let prng = Machine.Prng.create shuffle_seed in
      let out = ref (List.rev creates) in
      let rec drain () =
        let nonempty = List.filter (fun q -> !q <> []) queues in
        match nonempty with
        | [] -> ()
        | qs ->
            let q = List.nth qs (Machine.Prng.int prng (List.length qs)) in
            (match !q with
            | ev :: rest ->
                out := ev :: !out;
                q := rest
            | [] -> ());
            drain ()
      in
      drain ();
      let joins =
        List.init nthreads (fun i ->
            Trace.Event.Thread_join
              { waiter = Trace.Tid.main; joined = Trace.Tid.of_int (i + 1) })
      in
      return (Trace.Tracebuf.of_list (List.rev !out @ joins)))

  let arb_trace =
    QCheck.make
      ~print:(fun t ->
        String.concat "\n"
          (List.map Trace.Trace_io.event_to_line (Trace.Tracebuf.to_list t)))
      gen_trace
end

(* --- collector dedup differential ------------------------------------- *)

module Collect_tests = struct
  let same_result (a : Hawkset.Collector.result) (b : Hawkset.Collector.result)
      =
    a.Hawkset.Collector.words = b.Hawkset.Collector.words
    && a.Hawkset.Collector.slots = b.Hawkset.Collector.slots
    && a.Hawkset.Collector.windows_of = b.Hawkset.Collector.windows_of
    && a.Hawkset.Collector.loads_of = b.Hawkset.Collector.loads_of
    && a.Hawkset.Collector.stats = b.Hawkset.Collector.stats

  (* The tentpole property for stage 1-2: packed dedup keys change
     nothing — same records in the same order, same stats, same counter
     snapshot, and downstream the same report. *)
  let differential irh =
    QCheck.Test.make
      ~name:(Printf.sprintf "packed dedup == tuple dedup (irh=%b)" irh)
      ~count:120 Gen.arb_trace
      (fun trace ->
        let (packed, packed_report), packed_counters =
          with_counters (fun () ->
              let c = Hawkset.Collector.collect ~irh ~dedup:`Packed trace in
              (c, (Hawkset.Analysis.run c).Hawkset.Analysis.report))
        in
        let (tuple, tuple_report), tuple_counters =
          with_counters (fun () ->
              let c = Hawkset.Collector.collect ~irh ~dedup:`Tuple trace in
              (c, (Hawkset.Analysis.run c).Hawkset.Analysis.report))
        in
        same_result packed tuple
        && Hawkset.Report.to_json packed_report
           = Hawkset.Report.to_json tuple_report
        && packed_counters = tuple_counters)

  let eadr_and_ablation =
    QCheck.Test.make ~name:"packed == tuple under eadr / no-timestamps"
      ~count:40 Gen.arb_trace
      (fun trace ->
        List.for_all
          (fun (eadr, timestamps) ->
            let c d =
              Hawkset.Collector.collect ~eadr ~timestamps ~dedup:d trace
            in
            same_result (c `Packed) (c `Tuple))
          [ (true, true); (false, false) ])

  let tests =
    [
      QCheck_alcotest.to_alcotest (differential false);
      QCheck_alcotest.to_alcotest (differential true);
      QCheck_alcotest.to_alcotest eadr_and_ablation;
    ]
end

(* --- analysis memo differential --------------------------------------- *)

module Memo_tests = struct
  (* Packed memo keys change neither the outcome nor any counter, both
     sequentially and across shard counts. *)
  let differential =
    QCheck.Test.make ~name:"packed memo == tuple memo (seq and jobs=4)"
      ~count:120 Gen.arb_trace
      (fun trace ->
        let c = Hawkset.Collector.collect trace in
        let packed, packed_counters =
          with_counters (fun () -> Hawkset.Analysis.run ~memo_impl:`Packed c)
        in
        let tuple, tuple_counters =
          with_counters (fun () -> Hawkset.Analysis.run ~memo_impl:`Tuple c)
        in
        let par_tuple, par_tuple_counters =
          with_counters (fun () ->
              Hawkset.Par_analysis.analyse ~jobs:4 ~memo_impl:`Tuple c)
        in
        Hawkset.Report.to_json packed.Hawkset.Analysis.report
        = Hawkset.Report.to_json tuple.Hawkset.Analysis.report
        && packed.Hawkset.Analysis.pairs = tuple.Hawkset.Analysis.pairs
        && packed_counters = tuple_counters
        && Hawkset.Report.to_json par_tuple.Hawkset.Analysis.report
           = Hawkset.Report.to_json packed.Hawkset.Analysis.report
        && par_tuple_counters = packed_counters)

  let tests = [ QCheck_alcotest.to_alcotest differential ]
end

(* --- the packers themselves ------------------------------------------- *)

module Key_tests = struct
  module P = Trace.Packed_key

  let wmax bits = (1 lsl bits) - 1

  let window_boundaries () =
    let k ~tid ~site ~eff ~vec ~evec ~kind =
      P.window_key ~tid ~site ~eff ~vec ~evec ~kind
    in
    let all_max =
      k ~tid:(wmax P.tid_bits) ~site:(wmax P.site_bits) ~eff:(wmax P.ls_bits)
        ~vec:(wmax P.vc_bits) ~evec:(wmax P.vc_bits) ~kind:(wmax P.kind_bits)
    in
    Alcotest.(check bool) "all fields at width limit fit" true (all_max >= 0);
    Alcotest.(check bool) "zero key fits" true
      (k ~tid:0 ~site:0 ~eff:0 ~vec:0 ~evec:0 ~kind:0 >= 0);
    (* One past each field's limit must refuse, not wrap into a
       neighbouring key. *)
    List.iter
      (fun (name, key) ->
        Alcotest.(check int) (name ^ " overflows to unfit") P.unfit key)
      [
        ("tid", k ~tid:(1 lsl P.tid_bits) ~site:0 ~eff:0 ~vec:0 ~evec:0 ~kind:0);
        ( "site",
          k ~tid:0 ~site:(1 lsl P.site_bits) ~eff:0 ~vec:0 ~evec:0 ~kind:0 );
        ("eff", k ~tid:0 ~site:0 ~eff:(1 lsl P.ls_bits) ~vec:0 ~evec:0 ~kind:0);
        ("vec", k ~tid:0 ~site:0 ~eff:0 ~vec:(1 lsl P.vc_bits) ~evec:0 ~kind:0);
        ( "evec",
          k ~tid:0 ~site:0 ~eff:0 ~vec:0 ~evec:(1 lsl P.vc_bits) ~kind:0 );
        ( "kind",
          k ~tid:0 ~site:0 ~eff:0 ~vec:0 ~evec:0 ~kind:(1 lsl P.kind_bits) );
        ("negative", k ~tid:(-1) ~site:0 ~eff:0 ~vec:0 ~evec:0 ~kind:0);
      ]

  let load_boundaries () =
    Alcotest.(check bool) "max load key fits" true
      (P.load_key ~tid:(wmax P.tid_bits) ~site:(wmax P.site_bits)
         ~ls:(wmax P.ls_bits) ~vec:(wmax P.vc_bits)
      >= 0);
    Alcotest.(check int) "site overflow unfit" P.unfit
      (P.load_key ~tid:0 ~site:(1 lsl P.site_bits) ~ls:0 ~vec:0);
    Alcotest.(check int) "negative unfit" P.unfit
      (P.load_key ~tid:0 ~site:0 ~ls:(-3) ~vec:0)

  (* Injectivity: distinct in-range field tuples give distinct keys.
     Exercises every field at both ends of its range plus random
     interiors. *)
  let window_injective =
    let field bits =
      QCheck.Gen.(
        frequency [ (1, return 0); (1, return (wmax bits)); (4, int_bound (wmax bits)) ])
    in
    let gen_fields =
      QCheck.Gen.(
        map (fun (tid, site, eff, (vec, evec, kind)) -> (tid, site, eff, vec, evec, kind))
          (quad (field Trace.Packed_key.tid_bits)
             (field Trace.Packed_key.site_bits)
             (field Trace.Packed_key.ls_bits)
             (triple (field Trace.Packed_key.vc_bits)
                (field Trace.Packed_key.vc_bits)
                (field Trace.Packed_key.kind_bits))))
    in
    QCheck.Test.make ~name:"window_key is injective in range" ~count:500
      QCheck.(make (QCheck.Gen.pair gen_fields gen_fields))
      (fun (a, b) ->
        let key (tid, site, eff, vec, evec, kind) =
          P.window_key ~tid ~site ~eff ~vec ~evec ~kind
        in
        key a >= 0 && key b >= 0 && key a = key b = (a = b))

  let pair_properties () =
    Alcotest.(check bool) "max pair fits" true
      (P.pair P.pair_max P.pair_max >= 0);
    Alcotest.(check bool) "pair (0,0)" true (P.pair 0 0 = 0);
    Alcotest.check_raises "a over 31 bits raises"
      (Invalid_argument "Packed_key.pair: component exceeds 31 bits")
      (fun () -> ignore (P.pair (P.pair_max + 1) 0));
    Alcotest.check_raises "negative raises"
      (Invalid_argument "Packed_key.pair: component exceeds 31 bits")
      (fun () -> ignore (P.pair 0 (-1)))

  let pair_injective =
    QCheck.Test.make ~name:"pair is injective" ~count:500
      QCheck.(
        pair
          (pair (int_bound 1_000_000) (int_bound 1_000_000))
          (pair (int_bound 1_000_000) (int_bound 1_000_000)))
      (fun ((a1, b1), (a2, b2)) ->
        P.pair a1 b1 = P.pair a2 b2 = (a1 = a2 && b1 = b2))

  let tests =
    [
      Alcotest.test_case "window_key boundaries" `Quick window_boundaries;
      Alcotest.test_case "load_key boundaries" `Quick load_boundaries;
      QCheck_alcotest.to_alcotest window_injective;
      Alcotest.test_case "pair boundaries" `Quick pair_properties;
      QCheck_alcotest.to_alcotest pair_injective;
    ]
end

let () =
  Alcotest.run "packed_keys"
    [
      ("collector dedup", Collect_tests.tests);
      ("analysis memo", Memo_tests.tests);
      ("packers", Key_tests.tests);
    ]
