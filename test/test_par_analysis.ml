(* Differential tests for the domain-parallel stage 3: for random traces,
   for every registered application and for two golden fixture traces, the
   sharded analysis must be bit-identical to the sequential pass at every
   jobs count — same races in the same order with the same witness fields,
   same pair count, and the same deterministic counter snapshot. *)

let jobs_values = [ 1; 2; 4; 7 ]

(* Run [f] against a freshly reset global registry and return its result
   together with the counter snapshot it produced. *)
let with_counters f =
  Obs.Registry.reset Obs.Registry.global;
  let x = f () in
  (x, Obs.Registry.counters Obs.Registry.global)

(* --- random traces ---------------------------------------------------- *)

(* Same well-formed-trace generator family as test_hawkset's reference
   equivalence suite: a few threads, each running a random script of
   critical sections, PM accesses and persists over a small address space,
   interleaved at random. *)
module Gen = struct
  type op =
    | O_store of int * int
    | O_load of int * int
    | O_persist of int
    | O_locked of int * op list

  let rec gen_op depth =
    QCheck.Gen.(
      let addr = map (fun i -> 128 + (8 * i)) (int_bound 5) in
      let leaf =
        frequency
          [
            (4, map2 (fun a l -> O_store (a, l)) addr (int_range 1 30));
            (4, map2 (fun a l -> O_load (a, l)) addr (int_range 31 60));
            (2, map (fun a -> O_persist a) addr);
          ]
      in
      if depth = 0 then leaf
      else
        frequency
          [
            (8, leaf);
            ( 2,
              map2
                (fun lock body -> O_locked (lock, body))
                (int_bound 2)
                (list_size (int_bound 4) (gen_op (depth - 1))) );
          ])

  let gen_script = QCheck.Gen.(list_size (int_range 1 12) (gen_op 2))

  let rec expand ~t ops =
    let tid = Trace.Tid.of_int t in
    let file = "rnd.ml" in
    List.concat_map
      (fun op ->
        match op with
        | O_store (addr, l) ->
            [ Trace.Event.Store
                { tid; addr; size = 8; site = Trace.Site.v file ((100 * t) + l);
                  non_temporal = false } ]
        | O_load (addr, l) ->
            [ Trace.Event.Load
                { tid; addr; size = 8; site = Trace.Site.v file ((100 * t) + l) } ]
        | O_persist addr ->
            [ Trace.Event.Flush
                { tid; line = Pmem.Layout.line_of addr; kind = Trace.Event.Clwb;
                  site = Trace.Site.v file 0 };
              Trace.Event.Fence { tid; site = Trace.Site.v file 0 } ]
        | O_locked (lock, body) ->
            (Trace.Event.Lock_acquire
               { tid; lock = Trace.Lock_id.of_int lock;
                 site = Trace.Site.v file 0 }
            :: expand ~t body)
            @ [ Trace.Event.Lock_release
                  { tid; lock = Trace.Lock_id.of_int lock;
                    site = Trace.Site.v file 0 } ])
      ops

  let gen_trace =
    QCheck.Gen.(
      int_range 2 4 >>= fun nthreads ->
      list_repeat nthreads gen_script >>= fun scripts ->
      int >>= fun shuffle_seed ->
      let queues =
        List.mapi (fun i script -> ref (expand ~t:(i + 1) script)) scripts
      in
      let creates =
        List.init nthreads (fun i ->
            Trace.Event.Thread_create
              { parent = Trace.Tid.main; child = Trace.Tid.of_int (i + 1) })
      in
      let prng = Machine.Prng.create shuffle_seed in
      let out = ref (List.rev creates) in
      let rec drain () =
        let nonempty = List.filter (fun q -> !q <> []) queues in
        match nonempty with
        | [] -> ()
        | qs ->
            let q = List.nth qs (Machine.Prng.int prng (List.length qs)) in
            (match !q with
            | ev :: rest ->
                out := ev :: !out;
                q := rest
            | [] -> ());
            drain ()
      in
      drain ();
      let joins =
        List.init nthreads (fun i ->
            Trace.Event.Thread_join
              { waiter = Trace.Tid.main; joined = Trace.Tid.of_int (i + 1) })
      in
      return (Trace.Tracebuf.of_list (List.rev !out @ joins)))

  let arb_trace =
    QCheck.make
      ~print:(fun t ->
        String.concat "\n"
          (List.map Trace.Trace_io.event_to_line (Trace.Tracebuf.to_list t)))
      gen_trace
end

module Random_tests = struct
  (* The tentpole property: on every collected record set, every jobs
     count reproduces the sequential outcome exactly — structurally equal
     report (ordering and witness fields included), equal pair count and
     an equal counter snapshot. *)
  let differential irh =
    QCheck.Test.make
      ~name:
        (Printf.sprintf "par == seq for jobs in {1,2,4,7} (irh=%b)" irh)
      ~count:150 Gen.arb_trace
      (fun trace ->
        let c = Hawkset.Collector.collect ~irh trace in
        let seq, seq_counters =
          with_counters (fun () -> Hawkset.Analysis.run c)
        in
        List.for_all
          (fun jobs ->
            let par, par_counters =
              with_counters (fun () ->
                  Hawkset.Par_analysis.analyse ~jobs c)
            in
            par.Hawkset.Analysis.report = seq.Hawkset.Analysis.report
            && Hawkset.Report.to_json par.Hawkset.Analysis.report
               = Hawkset.Report.to_json seq.Hawkset.Analysis.report
            && par.Hawkset.Analysis.pairs = seq.Hawkset.Analysis.pairs
            && par_counters = seq_counters)
          jobs_values)

  (* Feature ablations shard identically too: the kernel is the same
     function either way. *)
  let differential_features =
    QCheck.Test.make ~name:"par == seq under feature ablations" ~count:60
      Gen.arb_trace
      (fun trace ->
        let c = Hawkset.Collector.collect ~irh:false trace in
        List.for_all
          (fun features ->
            let seq = Hawkset.Analysis.run ~features c in
            List.for_all
              (fun jobs ->
                let par = Hawkset.Par_analysis.analyse ~features ~jobs c in
                par.Hawkset.Analysis.report = seq.Hawkset.Analysis.report
                && par.Hawkset.Analysis.pairs = seq.Hawkset.Analysis.pairs)
              [ 2; 7 ])
          [
            Hawkset.Analysis.traditional;
            { Hawkset.Analysis.all_features with vector_clocks = false };
            { Hawkset.Analysis.all_features with timestamps = false };
          ])

  (* More shards than words: every extra domain gets an empty range and
     the merge must still be exact. *)
  let more_jobs_than_words () =
    let trace =
      Trace.Tracebuf.of_list
        [
          Trace.Event.Thread_create
            { parent = Trace.Tid.main; child = Trace.Tid.of_int 1 };
          Trace.Event.Thread_create
            { parent = Trace.Tid.main; child = Trace.Tid.of_int 2 };
          Trace.Event.Store
            { tid = Trace.Tid.of_int 1; addr = 128; size = 8;
              site = Trace.Site.v "one.ml" 1; non_temporal = false };
          Trace.Event.Load
            { tid = Trace.Tid.of_int 2; addr = 128; size = 8;
              site = Trace.Site.v "one.ml" 2 };
        ]
    in
    let c = Hawkset.Collector.collect ~irh:false trace in
    let seq = Hawkset.Analysis.run c in
    List.iter
      (fun jobs ->
        let par = Hawkset.Par_analysis.analyse ~jobs c in
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d equals sequential" jobs)
          true
          (par.Hawkset.Analysis.report = seq.Hawkset.Analysis.report
          && par.Hawkset.Analysis.pairs = seq.Hawkset.Analysis.pairs))
      [ 2; 16; 64 ];
    Alcotest.(check int) "the race is found" 1
      (Hawkset.Report.count seq.Hawkset.Analysis.report)

  let empty_trace () =
    let c = Hawkset.Collector.collect ~irh:false (Trace.Tracebuf.of_list []) in
    List.iter
      (fun jobs ->
        let par = Hawkset.Par_analysis.analyse ~jobs c in
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d: no races" jobs)
          0
          (Hawkset.Report.count par.Hawkset.Analysis.report);
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d: no pairs" jobs)
          0 par.Hawkset.Analysis.pairs)
      jobs_values

  let tests =
    [
      QCheck_alcotest.to_alcotest (differential false);
      QCheck_alcotest.to_alcotest (differential true);
      QCheck_alcotest.to_alcotest differential_features;
      Alcotest.test_case "more jobs than words" `Quick more_jobs_than_words;
      Alcotest.test_case "empty trace" `Quick empty_trace;
    ]
end

(* --- every registered application ------------------------------------- *)

module App_tests = struct
  (* End-to-end through the pipeline: for each Table 1 application the
     full config (IRH on) must give the same races, pair count and
     per-run counter delta at every jobs count. *)
  let app_differential (entry : Pmapps.Registry.entry) () =
    let ops = Pmapps.Registry.clamp_ops entry 250 in
    let report = entry.Pmapps.Registry.run ~seed:11 ~ops () in
    let trace = report.Machine.Sched.trace in
    let run jobs =
      Hawkset.Pipeline.run
        ~config:{ Hawkset.Pipeline.default with Hawkset.Pipeline.jobs = jobs }
        trace
    in
    let seq = run 1 in
    List.iter
      (fun jobs ->
        let par = run jobs in
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d recorded" jobs)
          jobs par.Hawkset.Pipeline.jobs;
        Alcotest.(check string)
          (Printf.sprintf "jobs=%d races identical" jobs)
          (Hawkset.Report.to_json seq.Hawkset.Pipeline.races)
          (Hawkset.Report.to_json par.Hawkset.Pipeline.races);
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d pairs identical" jobs)
          seq.Hawkset.Pipeline.pairs_examined
          par.Hawkset.Pipeline.pairs_examined;
        Alcotest.(check (list (pair string int)))
          (Printf.sprintf "jobs=%d counters identical" jobs)
          seq.Hawkset.Pipeline.counters par.Hawkset.Pipeline.counters)
      (List.tl jobs_values)

  let tests =
    List.map
      (fun (e : Pmapps.Registry.entry) ->
        Alcotest.test_case e.Pmapps.Registry.reg_name `Slow
          (app_differential e))
      Pmapps.Registry.all
end

(* --- golden fixtures --------------------------------------------------- *)

module Golden_tests = struct
  (* Hand-written traces under fixtures/ with their exact expected
     reports baked in: a regression net for the report's witness fields,
     which the differential tests only compare between two live runs. *)
  type expect = {
    e_store : string;
    e_load : string;
    e_store_tid : int;
    e_load_tid : int;
    e_addr : int;
    e_end : Hawkset.Access.end_kind;
    e_occ : int;
  }

  let check_fixture file expects () =
    let trace = Trace.Trace_io.load (Filename.concat "fixtures" file) in
    List.iter
      (fun jobs ->
        let r =
          Hawkset.Pipeline.run
            ~config:
              { Hawkset.Pipeline.default with Hawkset.Pipeline.jobs = jobs }
            trace
        in
        let races = Hawkset.Report.sorted r.Hawkset.Pipeline.races in
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d: race count" jobs)
          (List.length expects) (List.length races);
        List.iter2
          (fun e (race : Hawkset.Report.race) ->
            let ctx fmt =
              Printf.sprintf "jobs=%d %s->%s: %s" jobs e.e_store e.e_load fmt
            in
            Alcotest.(check string)
              (ctx "store site")
              e.e_store
              (Trace.Site.location race.Hawkset.Report.store_site);
            Alcotest.(check string)
              (ctx "load site")
              e.e_load
              (Trace.Site.location race.Hawkset.Report.load_site);
            Alcotest.(check int)
              (ctx "store tid")
              e.e_store_tid race.Hawkset.Report.store_tid;
            Alcotest.(check int)
              (ctx "load tid")
              e.e_load_tid race.Hawkset.Report.load_tid;
            Alcotest.(check int) (ctx "addr") e.e_addr race.Hawkset.Report.addr;
            Alcotest.(check bool)
              (ctx "window end")
              true
              (race.Hawkset.Report.window_end = e.e_end);
            Alcotest.(check int)
              (ctx "occurrences")
              e.e_occ race.Hawkset.Report.occurrences)
          expects races)
      [ 1; 4 ]

  (* A store published under lock 7 and loaded by another thread under the
     same lock, but persisted only after the critical section: the
     effective lockset is empty, so the lock does not protect the pair.
     The second word (persisted inside the section) must stay silent. *)
  let publish_unpersisted =
    check_fixture "publish_unpersisted.trace"
      [
        {
          e_store = "fix_a.ml:6";
          e_load = "fix_a.ml:11";
          e_store_tid = 1;
          e_load_tid = 2;
          e_addr = 128;
          e_end = Hawkset.Access.Persisted_same_thread;
          e_occ = 1;
        };
      ]

  (* An 8-byte store crossing a word boundary caught by a 4-byte load on
     its tail, plus a second witness at another address for the same site
     pair: one aggregated report with two occurrences. The disjoint-bytes
     pair and the store-store pair must stay silent. *)
  let overlap_aggregate =
    check_fixture "overlap_aggregate.trace"
      [
        {
          e_store = "fix_b.ml:3";
          e_load = "fix_b.ml:8";
          e_store_tid = 1;
          e_load_tid = 2;
          e_addr = 128;
          e_end = Hawkset.Access.Open_at_exit;
          e_occ = 2;
        };
      ]

  let tests =
    [
      Alcotest.test_case "publish before persist" `Quick publish_unpersisted;
      Alcotest.test_case "overlap aggregation" `Quick overlap_aggregate;
    ]
end

module Pool_tests = struct
  (* Lifecycle contract of the worker pool: shutdown is idempotent, and a
     submission after shutdown raises instead of parking forever on a
     stopped worker. *)
  let map_works t n =
    let r = Hawkset.Domain_pool.map t (Array.init n (fun i () -> i * i)) in
    Alcotest.(check int) "results" n (Array.length r);
    Array.iteri
      (fun i o ->
        match o with
        | Ok v -> Alcotest.(check int) (Printf.sprintf "task %d" i) (i * i) v
        | Error e -> Alcotest.failf "task %d failed: %s" i (Printexc.to_string e))
      r

  let double_shutdown () =
    let t = Hawkset.Domain_pool.create () in
    map_works t 3;
    Hawkset.Domain_pool.shutdown t;
    (* Second call must be a no-op, not a hang or a double-join crash. *)
    Hawkset.Domain_pool.shutdown t

  let post_shutdown_submit () =
    let t = Hawkset.Domain_pool.create () in
    map_works t 3;
    Hawkset.Domain_pool.shutdown t;
    Alcotest.check_raises "map after shutdown" Hawkset.Domain_pool.Pool_closed
      (fun () -> ignore (Hawkset.Domain_pool.map t [| (fun () -> ()) |]));
    Alcotest.check_raises "empty map after shutdown"
      Hawkset.Domain_pool.Pool_closed (fun () ->
        ignore (Hawkset.Domain_pool.map t ([||] : (unit -> unit) array)));
    Alcotest.check_raises "ensure after shutdown"
      Hawkset.Domain_pool.Pool_closed (fun () ->
        Hawkset.Domain_pool.ensure t 2)

  let shutdown_fresh_pool () =
    (* No workers ever spawned: both calls still succeed. *)
    let t = Hawkset.Domain_pool.create () in
    Hawkset.Domain_pool.shutdown t;
    Hawkset.Domain_pool.shutdown t;
    Alcotest.check_raises "map after shutdown" Hawkset.Domain_pool.Pool_closed
      (fun () -> ignore (Hawkset.Domain_pool.map t [| (fun () -> ()) |]))

  let tests =
    [
      Alcotest.test_case "double shutdown is a no-op" `Quick double_shutdown;
      Alcotest.test_case "post-shutdown submit raises" `Quick
        post_shutdown_submit;
      Alcotest.test_case "shutdown of a fresh pool" `Quick shutdown_fresh_pool;
    ]
end

let () =
  Alcotest.run "par_analysis"
    [
      ("random", Random_tests.tests);
      ("apps", App_tests.tests);
      ("golden", Golden_tests.tests);
      ("pool", Pool_tests.tests);
    ]
