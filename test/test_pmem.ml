(* Tests for the PM heap and worst-case cache simulator: persistence only
   via flush+fence, crash images, non-temporal stores, allocator reuse. *)

let tid n = Trace.Tid.of_int n
let t0 = tid 0
let t1 = tid 1

let mk ?(size = 1 lsl 16) () = Pmem.Heap.create ~size ()

module Layout_tests = struct
  let line_of () =
    Alcotest.(check int) "0" 0 (Pmem.Layout.line_of 63);
    Alcotest.(check int) "64" 64 (Pmem.Layout.line_of 64);
    Alcotest.(check int) "128" 128 (Pmem.Layout.line_of 191)

  let lines_of_range () =
    Alcotest.(check (list int)) "within one line" [ 0 ]
      (Pmem.Layout.lines_of_range 8 8);
    Alcotest.(check (list int)) "crossing" [ 0; 64 ]
      (Pmem.Layout.lines_of_range 60 8);
    Alcotest.(check (list int)) "empty" [] (Pmem.Layout.lines_of_range 10 0);
    Alcotest.(check (list int)) "three lines" [ 64; 128; 192 ]
      (Pmem.Layout.lines_of_range 64 129)

  let words_of_range () =
    Alcotest.(check (list int)) "one word" [ 2 ]
      (Pmem.Layout.words_of_range 16 8);
    Alcotest.(check (list int)) "straddle" [ 0; 1 ]
      (Pmem.Layout.words_of_range 4 8)

  let iter_words_cases () =
    let collect addr size =
      let acc = ref [] in
      Pmem.Layout.iter_words addr size (fun w -> acc := w :: !acc);
      List.rev !acc
    in
    Alcotest.(check (list int)) "one word" [ 2 ] (collect 16 8);
    Alcotest.(check (list int)) "straddle" [ 0; 1 ] (collect 4 8);
    Alcotest.(check (list int)) "empty" [] (collect 10 0);
    Alcotest.(check int) "fold count" 2
      (Pmem.Layout.fold_words 4 8 0 (fun n _ -> n + 1));
    Alcotest.(check int) "fold empty" 7
      (Pmem.Layout.fold_words 10 0 7 (fun n _ -> n + 1))

  let iter_words_matches_list =
    QCheck.Test.make ~name:"iter_words = words_of_range" ~count:500
      QCheck.(pair small_nat small_nat)
      (fun (addr, size) ->
        let acc = ref [] in
        Pmem.Layout.iter_words addr size (fun w -> acc := w :: !acc);
        List.rev !acc = Pmem.Layout.words_of_range addr size
        && Pmem.Layout.fold_words addr size [] (fun l w -> w :: l) = !acc)

  let overlap () =
    Alcotest.(check bool) "disjoint" false
      (Pmem.Layout.ranges_overlap 0 8 8 8);
    Alcotest.(check bool) "partial" true
      (Pmem.Layout.ranges_overlap 0 9 8 8);
    Alcotest.(check bool) "contained" true
      (Pmem.Layout.ranges_overlap 0 64 16 4);
    Alcotest.(check bool) "zero size" false
      (Pmem.Layout.ranges_overlap 0 0 0 8)

  let overlap_symmetric =
    QCheck.Test.make ~name:"range overlap is symmetric" ~count:500
      QCheck.(quad small_nat small_nat small_nat small_nat)
      (fun (a1, s1, a2, s2) ->
        Pmem.Layout.ranges_overlap a1 s1 a2 s2
        = Pmem.Layout.ranges_overlap a2 s2 a1 s1)

  let tests =
    [
      Alcotest.test_case "line_of" `Quick line_of;
      Alcotest.test_case "lines_of_range" `Quick lines_of_range;
      Alcotest.test_case "words_of_range" `Quick words_of_range;
      Alcotest.test_case "iter_words" `Quick iter_words_cases;
      QCheck_alcotest.to_alcotest iter_words_matches_list;
      Alcotest.test_case "ranges_overlap" `Quick overlap;
      QCheck_alcotest.to_alcotest overlap_symmetric;
    ]
end

module Alloc_tests = struct
  let alignment () =
    let h = mk () in
    let a = Pmem.Heap.alloc ~align:64 h 100 in
    Alcotest.(check int) "aligned" 0 (a mod 64);
    let b = Pmem.Heap.alloc h 8 in
    Alcotest.(check bool) "disjoint" true (b >= a + 100)

  let null_page_reserved () =
    let h = mk () in
    let a = Pmem.Heap.alloc h 8 in
    Alcotest.(check bool) "address 0 never allocated" true (a > 0)

  let reuse_lifo () =
    let h = mk () in
    let a = Pmem.Heap.alloc h 32 in
    let b = Pmem.Heap.alloc h 32 in
    Pmem.Heap.free h ~addr:a ~size:32;
    Pmem.Heap.free h ~addr:b ~size:32;
    Alcotest.(check int) "most recently freed first" b (Pmem.Heap.alloc h 32);
    Alcotest.(check int) "then the other" a (Pmem.Heap.alloc h 32)

  let reuse_keeps_contents () =
    let h = mk () in
    let a = Pmem.Heap.alloc h 8 in
    Pmem.Heap.write_i64 h a 0xDEADL;
    Pmem.Heap.free h ~addr:a ~size:8;
    let b = Pmem.Heap.alloc h 8 in
    Alcotest.(check int) "same block" a b;
    Alcotest.(check int64) "old contents visible" 0xDEADL
      (Pmem.Heap.read_i64 h b)

  let out_of_memory () =
    let h = Pmem.Heap.create ~size:256 () in
    Alcotest.check_raises "oom" Out_of_memory (fun () ->
        ignore (Pmem.Heap.alloc h 1024))

  let bad_args () =
    let h = mk () in
    Alcotest.check_raises "size" (Invalid_argument "Heap.alloc: non-positive size")
      (fun () -> ignore (Pmem.Heap.alloc h 0));
    Alcotest.check_raises "align"
      (Invalid_argument "Heap.alloc: alignment must be a power of two")
      (fun () -> ignore (Pmem.Heap.alloc ~align:3 h 8))

  let tests =
    [
      Alcotest.test_case "alignment" `Quick alignment;
      Alcotest.test_case "null page reserved" `Quick null_page_reserved;
      Alcotest.test_case "LIFO reuse" `Quick reuse_lifo;
      Alcotest.test_case "reuse keeps contents" `Quick reuse_keeps_contents;
      Alcotest.test_case "out of memory" `Quick out_of_memory;
      Alcotest.test_case "bad arguments" `Quick bad_args;
    ]
end

module Persistence_tests = struct
  let store h ?(tid = t0) ?(nt = false) addr v =
    Pmem.Heap.write_i64 h addr v;
    Pmem.Heap.note_store h ~tid ~addr ~size:8 ~non_temporal:nt

  let persist h ?(tid = t0) addr =
    Pmem.Heap.flush h ~tid ~line:(Pmem.Layout.line_of addr);
    Pmem.Heap.fence h ~tid

  let store_alone_not_persistent () =
    let h = mk () in
    store h 128 42L;
    Alcotest.(check bool) "dirty" false
      (Pmem.Heap.persisted_range h ~addr:128 ~size:8);
    Alcotest.(check int64) "visible" 42L (Pmem.Heap.read_i64 h 128);
    Alcotest.(check int64) "not in crash image" 0L
      (Bytes.get_int64_le (Pmem.Heap.crash_image h) 128)

  let flush_without_fence_not_persistent () =
    let h = mk () in
    store h 128 42L;
    Pmem.Heap.flush h ~tid:t0 ~line:128;
    Alcotest.(check bool) "still not guaranteed" false
      (Pmem.Heap.persisted_range h ~addr:128 ~size:8);
    Alcotest.(check int64) "crash loses it" 0L
      (Bytes.get_int64_le (Pmem.Heap.crash_image h) 128)

  let fence_without_flush_not_persistent () =
    let h = mk () in
    store h 128 42L;
    Pmem.Heap.fence h ~tid:t0;
    Alcotest.(check bool) "still dirty" false
      (Pmem.Heap.persisted_range h ~addr:128 ~size:8)

  let flush_plus_fence_persists () =
    let h = mk () in
    store h 128 42L;
    persist h 128;
    Alcotest.(check bool) "persisted" true
      (Pmem.Heap.persisted_range h ~addr:128 ~size:8);
    Alcotest.(check int64) "in crash image" 42L
      (Bytes.get_int64_le (Pmem.Heap.crash_image h) 128)

  let fence_by_other_thread_does_not_complete () =
    let h = mk () in
    store h 128 42L;
    Pmem.Heap.flush h ~tid:t0 ~line:128;
    Pmem.Heap.fence h ~tid:t1;
    (* Worst case: T1's sfence does not order T0's pending flush. *)
    Alcotest.(check bool) "not persisted" false
      (Pmem.Heap.persisted_range h ~addr:128 ~size:8)

  let store_after_flush_redirties () =
    let h = mk () in
    store h 128 1L;
    Pmem.Heap.flush h ~tid:t0 ~line:128;
    store h 136 2L (* same line, after the flush *);
    Pmem.Heap.fence h ~tid:t0;
    (* The flushed snapshot persisted (value 1), but the newer store is
       not covered by that flush. *)
    let img = Pmem.Heap.crash_image h in
    Alcotest.(check int64) "snapshot persisted" 1L (Bytes.get_int64_le img 128);
    Alcotest.(check int64) "late store lost" 0L (Bytes.get_int64_le img 136);
    Alcotest.(check bool) "line still dirty" false
      (Pmem.Heap.persisted_range h ~addr:136 ~size:8)

  let flush_clean_line_noop () =
    let h = mk () in
    Pmem.Heap.flush h ~tid:t0 ~line:0;
    Pmem.Heap.fence h ~tid:t0;
    Alcotest.(check int) "no dirty lines" 0 (Pmem.Heap.dirty_lines h)

  let unaligned_flush_rejected () =
    let h = mk () in
    Alcotest.check_raises "unaligned"
      (Invalid_argument "Heap.flush: address is not line-aligned") (fun () ->
        Pmem.Heap.flush h ~tid:t0 ~line:12)

  let nt_store_persists_on_fence () =
    let h = mk () in
    store h ~nt:true 128 7L;
    Alcotest.(check bool) "before fence: not guaranteed" false
      (Pmem.Heap.persisted_range h ~addr:128 ~size:8);
    Pmem.Heap.fence h ~tid:t0;
    Alcotest.(check bool) "after fence: persisted, no flush needed" true
      (Pmem.Heap.persisted_range h ~addr:128 ~size:8);
    Alcotest.(check int64) "crash image" 7L
      (Bytes.get_int64_le (Pmem.Heap.crash_image h) 128)

  let nt_fence_by_other_thread () =
    let h = mk () in
    store h ~nt:true ~tid:t1 128 7L;
    Pmem.Heap.fence h ~tid:t0;
    Alcotest.(check bool) "other thread's fence does not drain" false
      (Pmem.Heap.persisted_range h ~addr:128 ~size:8)

  let dirty_conflict_detection () =
    let h = mk () in
    store h ~tid:t0 128 1L;
    (match Pmem.Heap.dirty_conflict h ~tid:t1 ~addr:128 ~size:8 with
    | Some w -> Alcotest.(check int) "writer is T0" 0 (Trace.Tid.to_int w)
    | None -> Alcotest.fail "expected conflict");
    Alcotest.(check bool) "own store: no conflict" true
      (Pmem.Heap.dirty_conflict h ~tid:t0 ~addr:128 ~size:8 = None);
    persist h 128;
    Alcotest.(check bool) "persisted: no conflict" true
      (Pmem.Heap.dirty_conflict h ~tid:t1 ~addr:128 ~size:8 = None)

  let crash_image_prefix_consistency =
    QCheck.Test.make
      ~name:"crash image holds the last flushed+fenced value per word"
      ~count:100
      QCheck.(small_list (pair (int_bound 62) (int_bound 1000)))
      (fun writes ->
        let h = Pmem.Heap.create ~size:(1 lsl 12) () in
        (* Track our own model of the persistent value per word. *)
        let model = Hashtbl.create 16 in
        List.iter
          (fun (word, v) ->
            let addr = word * 8 in
            let v = Int64.of_int v in
            Pmem.Heap.write_i64 h addr v;
            Pmem.Heap.note_store h ~tid:t0 ~addr ~size:8 ~non_temporal:false;
            if v <> 0L && Int64.to_int v mod 2 = 0 then begin
              Pmem.Heap.flush h ~tid:t0 ~line:(Pmem.Layout.line_of addr);
              Pmem.Heap.fence h ~tid:t0;
              (* The fence persisted whole lines: every word of that line
                 takes its current volatile value in the model. *)
              let base = Pmem.Layout.line_of addr in
              for w = 0 to (Pmem.Layout.line_size / 8) - 1 do
                Hashtbl.replace model
                  ((base / 8) + w)
                  (Pmem.Heap.read_i64 h (base + (w * 8)))
              done
            end)
          writes;
        let img = Pmem.Heap.crash_image h in
        Hashtbl.fold
          (fun word v ok ->
            ok && Bytes.get_int64_le img (word * 8) = v)
          model true)

  let of_image_roundtrip () =
    let h = mk () in
    store h 128 9L;
    persist h 128;
    store h 256 5L (* unpersisted *);
    let h' = Pmem.Heap.of_image (Pmem.Heap.crash_image h) in
    Alcotest.(check int64) "persisted survives" 9L (Pmem.Heap.read_i64 h' 128);
    Alcotest.(check int64) "unpersisted lost" 0L (Pmem.Heap.read_i64 h' 256);
    Alcotest.(check int) "clean cache" 0 (Pmem.Heap.dirty_lines h')

  let tests =
    [
      Alcotest.test_case "store alone is volatile" `Quick
        store_alone_not_persistent;
      Alcotest.test_case "flush without fence" `Quick
        flush_without_fence_not_persistent;
      Alcotest.test_case "fence without flush" `Quick
        fence_without_flush_not_persistent;
      Alcotest.test_case "flush+fence persists" `Quick flush_plus_fence_persists;
      Alcotest.test_case "cross-thread fence" `Quick
        fence_by_other_thread_does_not_complete;
      Alcotest.test_case "store after flush re-dirties" `Quick
        store_after_flush_redirties;
      Alcotest.test_case "flush of clean line" `Quick flush_clean_line_noop;
      Alcotest.test_case "unaligned flush rejected" `Quick
        unaligned_flush_rejected;
      Alcotest.test_case "non-temporal store" `Quick nt_store_persists_on_fence;
      Alcotest.test_case "nt store, other thread's fence" `Quick
        nt_fence_by_other_thread;
      Alcotest.test_case "dirty conflict detection" `Quick
        dirty_conflict_detection;
      QCheck_alcotest.to_alcotest crash_image_prefix_consistency;
      Alcotest.test_case "of_image roundtrip" `Quick of_image_roundtrip;
    ]
end

let () =
  Alcotest.run "pmem"
    [
      ("layout", Layout_tests.tests);
      ("alloc", Alloc_tests.tests);
      ("persistence", Persistence_tests.tests);
    ]
