(* The fingerprint-keyed result cache: probe/insert semantics, the
   config fingerprint's inclusion/exclusion contract, and the journal
   persistence roundtrip (including its tolerance of damage). *)

module RC = Hawkset.Result_cache

let entry ?(json = {|{"schema":"x","races":[]}|})
    ?(canonical = [ ("a.ml:1", "b.ml:2"); ("c.ml:3", "d.ml:4") ])
    ?(counters = [ ("analysis.pairs", 7); ("collect.events", 100) ]) () =
  { RC.e_races_json = json; e_canonical = canonical; e_counters = counters }

let fp16 s = Printf.sprintf "%016x" (Hashtbl.hash s land 0xFFFFFF)
let check_entry msg a b =
  Alcotest.(check string) (msg ^ " json") a.RC.e_races_json b.RC.e_races_json;
  Alcotest.(check (list (pair string string)))
    (msg ^ " canonical") a.RC.e_canonical b.RC.e_canonical;
  Alcotest.(check (list (pair string int)))
    (msg ^ " counters") a.RC.e_counters b.RC.e_counters

let with_tmp f =
  let path = Filename.temp_file "hawkset_cache" ".jnl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

module Basic = struct
  let find_miss_then_hit () =
    let c = RC.create () in
    Alcotest.(check bool) "cold miss" true
      (RC.find c ~trace_fp:(fp16 "t1") ~config_fp:(fp16 "c1") = None);
    RC.add c ~trace_fp:(fp16 "t1") ~config_fp:(fp16 "c1") (entry ());
    (match RC.find c ~trace_fp:(fp16 "t1") ~config_fp:(fp16 "c1") with
    | None -> Alcotest.fail "expected hit"
    | Some e -> check_entry "hit" (entry ()) e);
    Alcotest.(check int) "length" 1 (RC.length c)

  let key_is_both_fingerprints () =
    let c = RC.create () in
    RC.add c ~trace_fp:(fp16 "t1") ~config_fp:(fp16 "c1") (entry ());
    Alcotest.(check bool) "same trace, other config misses" true
      (RC.find c ~trace_fp:(fp16 "t1") ~config_fp:(fp16 "c2") = None);
    Alcotest.(check bool) "other trace, same config misses" true
      (RC.find c ~trace_fp:(fp16 "t2") ~config_fp:(fp16 "c1") = None)

  let first_add_wins () =
    let c = RC.create () in
    RC.add c ~trace_fp:(fp16 "t") ~config_fp:(fp16 "c") (entry ~json:"first" ());
    RC.add c ~trace_fp:(fp16 "t") ~config_fp:(fp16 "c") (entry ~json:"second" ());
    Alcotest.(check int) "no duplicate row" 1 (RC.length c);
    match RC.find c ~trace_fp:(fp16 "t") ~config_fp:(fp16 "c") with
    | Some e -> Alcotest.(check string) "first kept" "first" e.RC.e_races_json
    | None -> Alcotest.fail "expected hit"

  let clear_keeps_totals () =
    let c = RC.create () in
    RC.add c ~trace_fp:(fp16 "t") ~config_fp:(fp16 "c") (entry ());
    ignore (RC.find c ~trace_fp:(fp16 "t") ~config_fp:(fp16 "c"));
    ignore (RC.find c ~trace_fp:(fp16 "miss") ~config_fp:(fp16 "c"));
    RC.clear c;
    Alcotest.(check int) "emptied" 0 (RC.length c);
    let stat name =
      Option.value ~default:(-1) (List.assoc_opt name (RC.stats c))
    in
    Alcotest.(check int) "entries stat" 0 (stat "cache.entries");
    Alcotest.(check int) "bytes stat" 0 (stat "cache.bytes");
    Alcotest.(check int) "hits survive clear" 1 (stat "cache.hits");
    Alcotest.(check int) "misses survive clear" 1 (stat "cache.misses");
    Alcotest.(check bool) "cleared key misses" true
      (RC.find c ~trace_fp:(fp16 "t") ~config_fp:(fp16 "c") = None)

  let stats_shape () =
    let c = RC.create () in
    RC.add c ~trace_fp:(fp16 "t") ~config_fp:(fp16 "c") (entry ());
    Alcotest.(check (list string)) "sorted keys"
      [ "cache.bytes"; "cache.entries"; "cache.hits"; "cache.misses" ]
      (List.map fst (RC.stats c));
    let stat name =
      Option.value ~default:(-1) (List.assoc_opt name (RC.stats c))
    in
    Alcotest.(check int) "one entry" 1 (stat "cache.entries");
    Alcotest.(check bool) "bytes counted" true (stat "cache.bytes" > 0)

  let tests =
    [
      Alcotest.test_case "find miss then hit" `Quick find_miss_then_hit;
      Alcotest.test_case "key is (trace, config)" `Quick
        key_is_both_fingerprints;
      Alcotest.test_case "first add wins" `Quick first_add_wins;
      Alcotest.test_case "clear keeps hit/miss totals" `Quick
        clear_keeps_totals;
      Alcotest.test_case "stats shape" `Quick stats_shape;
    ]
end

module Config_fp = struct
  let stable () =
    let a = RC.config_fingerprint Hawkset.Pipeline.default in
    let b = RC.config_fingerprint Hawkset.Pipeline.default in
    Alcotest.(check string) "deterministic" a b;
    Alcotest.(check int) "16 hex digits" 16 (String.length a)

  let jobs_excluded () =
    (* Any jobs value produces bit-identical reports, so it must not
       split the key space. *)
    let base = Hawkset.Pipeline.default in
    Alcotest.(check string) "jobs=4 same key"
      (RC.config_fingerprint base)
      (RC.config_fingerprint { base with Hawkset.Pipeline.jobs = 4 })

  let semantic_knobs_included () =
    let base = Hawkset.Pipeline.default in
    Alcotest.(check bool) "event budget changes key" true
      (RC.config_fingerprint base
      <> RC.config_fingerprint
           { base with Hawkset.Pipeline.event_budget = Some 100 })

  let tests =
    [
      Alcotest.test_case "stable" `Quick stable;
      Alcotest.test_case "jobs excluded" `Quick jobs_excluded;
      Alcotest.test_case "semantic knobs included" `Quick
        semantic_knobs_included;
    ]
end

module Persist = struct
  let roundtrip () =
    let c = RC.create () in
    RC.add c ~trace_fp:(fp16 "t1") ~config_fp:(fp16 "c1") (entry ());
    RC.add c ~trace_fp:(fp16 "t2") ~config_fp:(fp16 "c1")
      (entry ~json:{|{"races":[1]}|} ~canonical:[] ~counters:[] ());
    with_tmp (fun path ->
        RC.save c path;
        let loaded = RC.load path in
        Alcotest.(check int) "both entries" 2 (RC.length loaded);
        (match RC.find loaded ~trace_fp:(fp16 "t1") ~config_fp:(fp16 "c1") with
        | Some e -> check_entry "entry 1" (entry ()) e
        | None -> Alcotest.fail "entry 1 lost");
        match RC.find loaded ~trace_fp:(fp16 "t2") ~config_fp:(fp16 "c1") with
        | Some e ->
            check_entry "entry 2 (empty lists)"
              (entry ~json:{|{"races":[1]}|} ~canonical:[] ~counters:[] ())
              e
        | None -> Alcotest.fail "entry 2 lost")

  let missing_file_is_empty () =
    let c = RC.load "/nonexistent/hawkset_cache.jnl" in
    Alcotest.(check int) "empty" 0 (RC.length c)

  let torn_tail_costs_tail_only () =
    let c = RC.create () in
    RC.add c ~trace_fp:(fp16 "t1") ~config_fp:(fp16 "c1") (entry ());
    RC.add c ~trace_fp:(fp16 "t2") ~config_fp:(fp16 "c1") (entry ());
    with_tmp (fun path ->
        RC.save c path;
        let full = In_channel.with_open_bin path In_channel.input_all in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc
              (String.sub full 0 (String.length full - 9)));
        let loaded = RC.load path in
        Alcotest.(check int) "valid prefix kept" 1 (RC.length loaded))

  let load_into_merges () =
    let c = RC.create () in
    RC.add c ~trace_fp:(fp16 "t1") ~config_fp:(fp16 "c1") (entry ());
    with_tmp (fun path ->
        RC.save c path;
        let dst = RC.create () in
        RC.add dst ~trace_fp:(fp16 "t9") ~config_fp:(fp16 "c1") (entry ());
        Alcotest.(check int) "one read" 1 (RC.load_into dst path);
        Alcotest.(check int) "merged" 2 (RC.length dst);
        (* Merging the same journal again finds the keys present. *)
        ignore (RC.load_into dst path);
        Alcotest.(check int) "idempotent" 2 (RC.length dst))

  let tests =
    [
      Alcotest.test_case "save/load roundtrip" `Quick roundtrip;
      Alcotest.test_case "missing file is empty" `Quick missing_file_is_empty;
      Alcotest.test_case "torn tail costs the tail only" `Quick
        torn_tail_costs_tail_only;
      Alcotest.test_case "load_into merges" `Quick load_into_merges;
    ]
end

let () =
  Alcotest.run "result_cache"
    [
      ("basic", Basic.tests);
      ("config_fp", Config_fp.tests);
      ("persist", Persist.tests);
    ]
