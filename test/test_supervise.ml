(* Tests for the supervision layer: the journal substrate, the budget
   guard, failure classification, deterministic backoff, the retry /
   degradation / circuit-breaker state machine, and the crash-safe
   resume contract (kill + resume => byte-identical merged report). *)

let with_tmp f =
  let path = Filename.temp_file "hawkset_supervise" ".jnl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

module Journal_tests = struct
  let record tag fields payload = { Trace.Journal.tag; fields; payload }

  let sample =
    [
      record "batch" [ "deadbeef"; "3" ] None;
      record "start" [ "0"; "1"; "0" ] None;
      record "done" [ "0"; "1"; "0"; "0" ] (Some "[{\"a\": 1}]\nline two");
      record "fail" [ "1"; "1"; "timeout" ] None;
    ]

  let write path records =
    let w = Trace.Journal.create path in
    List.iter (Trace.Journal.add w) records;
    Trace.Journal.close w

  let roundtrip () =
    with_tmp (fun path ->
        write path sample;
        let l = Trace.Journal.load path in
        Alcotest.(check bool) "complete" true l.Trace.Journal.l_complete;
        Alcotest.(check bool) "no error" true
          (l.Trace.Journal.l_first_error = None);
        Alcotest.(check int) "count" (List.length sample)
          (List.length l.Trace.Journal.l_records);
        List.iter2
          (fun (a : Trace.Journal.record) (b : Trace.Journal.record) ->
            Alcotest.(check string) "tag" a.Trace.Journal.tag b.Trace.Journal.tag;
            Alcotest.(check (list string))
              "fields" a.Trace.Journal.fields b.Trace.Journal.fields;
            Alcotest.(check (option string))
              "payload" a.Trace.Journal.payload b.Trace.Journal.payload)
          sample l.Trace.Journal.l_records)

  let append_extends () =
    with_tmp (fun path ->
        write path [ List.hd sample ];
        let w = Trace.Journal.append path in
        Trace.Journal.add w (record "quar" [ "2" ] None);
        Trace.Journal.close w;
        let l = Trace.Journal.load path in
        Alcotest.(check int) "count" 2 (List.length l.Trace.Journal.l_records))

  let truncation_salvages_prefix () =
    with_tmp (fun path ->
        write path sample;
        let full = In_channel.with_open_bin path In_channel.input_all in
        (* Cut in the middle of the payload record (the third one). *)
        let cut = String.length full - (String.length full / 3) in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (String.sub full 0 cut));
        let l = Trace.Journal.load path in
        Alcotest.(check bool) "incomplete" false l.Trace.Journal.l_complete;
        Alcotest.(check bool) "error located" true
          (l.Trace.Journal.l_first_error <> None);
        Alcotest.(check bool) "prefix only" true
          (List.length l.Trace.Journal.l_records < List.length sample);
        List.iteri
          (fun i (r : Trace.Journal.record) ->
            Alcotest.(check string)
              (Printf.sprintf "tag %d" i)
              (List.nth sample i).Trace.Journal.tag r.Trace.Journal.tag)
          l.Trace.Journal.l_records)

  let corrupt_byte_detected () =
    with_tmp (fun path ->
        write path sample;
        let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
        (* Flip a byte inside the first record's fields. *)
        let pos = String.length "# hawkset-journal 1\nR batch " + 2 in
        Bytes.set full pos (Char.chr (Char.code (Bytes.get full pos) lxor 0x41));
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_bytes oc full);
        let l = Trace.Journal.load path in
        Alcotest.(check bool) "incomplete" false l.Trace.Journal.l_complete;
        Alcotest.(check int) "nothing salvaged after the flip" 0
          (List.length l.Trace.Journal.l_records))

  let missing_file_raises () =
    (* The documented escape hatch: everything else is salvaged, but an
       unopenable file is the caller's problem ([Supervise.run] guards
       resume with [Sys.file_exists]). *)
    Alcotest.(check bool) "Sys_error" true
      (match Trace.Journal.load "/nonexistent/hawkset.jnl" with
      | _ -> false
      | exception Sys_error _ -> true)

  let bad_token_rejected () =
    with_tmp (fun path ->
        let w = Trace.Journal.create path in
        Fun.protect
          ~finally:(fun () -> Trace.Journal.close w)
          (fun () ->
            Alcotest.(check bool) "space in field" true
              (match Trace.Journal.add w (record "x" [ "a b" ] None) with
              | () -> false
              | exception Invalid_argument _ -> true)))

  let tests =
    [
      Alcotest.test_case "roundtrip" `Quick roundtrip;
      Alcotest.test_case "append extends" `Quick append_extends;
      Alcotest.test_case "truncation salvages prefix" `Quick
        truncation_salvages_prefix;
      Alcotest.test_case "corrupt byte detected" `Quick corrupt_byte_detected;
      Alcotest.test_case "missing file raises" `Quick missing_file_raises;
      Alcotest.test_case "bad token rejected" `Quick bad_token_rejected;
    ]
end

module Budget_tests = struct
  let no_budget_is_transparent () =
    Alcotest.(check int) "result" 7 (Obs.Budget.with_guard (fun () -> 7))

  let wall_budget_fires () =
    Alcotest.check_raises "expired wall budget"
      (Obs.Budget.Exceeded (`Wall, 0.0)) (fun () ->
        (* A pre-expired budget trips on the synchronous entry check —
           deterministic, no waiting. *)
        try Obs.Budget.with_guard ~wall_s:0.0 (fun () -> ()) with
        | Obs.Budget.Exceeded (k, _) -> raise (Obs.Budget.Exceeded (k, 0.0)))

  let guard_disarms () =
    (* After a guarded call returns, allocating heavily must not raise a
       stale alarm exception. *)
    ignore (Obs.Budget.with_guard ~heap_mb:10_000.0 (fun () -> 1));
    let acc = ref [] in
    for i = 1 to 1_000 do
      acc := Array.make 100 i :: !acc
    done;
    Gc.full_major ();
    Alcotest.(check int) "allocated" 1_000 (List.length !acc)

  let tests =
    [
      Alcotest.test_case "no budget is transparent" `Quick
        no_budget_is_transparent;
      Alcotest.test_case "expired wall budget fires" `Quick wall_budget_fires;
      Alcotest.test_case "guard disarms on exit" `Quick guard_disarms;
    ]
end

module Classify_tests = struct
  let mapping () =
    let check name exp e =
      Alcotest.(check string) name exp
        (Supervise.failure_to_string (Supervise.classify_exn e))
    in
    check "wall" "timeout" (Obs.Budget.Exceeded (`Wall, 1.0));
    check "heap" "oom" (Obs.Budget.Exceeded (`Heap, 1.0));
    check "parse" "corrupt-trace" (Trace.Trace_io.Parse_error (3, "boom"));
    check "lost" "worker-lost" (Hawkset.Domain_pool.Worker_lost 2);
    check "other" "pipeline-exn" (Failure "anything else")

  let string_roundtrip () =
    List.iter
      (fun f ->
        match Supervise.failure_of_string (Supervise.failure_to_string f) with
        | Ok f' -> Alcotest.(check bool) "roundtrip" true (f = f')
        | Error m -> Alcotest.fail m)
      [ Supervise.Timeout; Supervise.Oom; Supervise.Corrupt_trace;
        Supervise.Pipeline_exn; Supervise.Worker_lost ];
    Alcotest.(check bool) "unknown rejected" true
      (match Supervise.failure_of_string "melted" with
      | Error _ -> true
      | Ok _ -> false)

  let fault_parsing () =
    (match Supervise.fault_of_string "2:timeout" with
    | Ok f ->
        Alcotest.(check int) "job" 2 f.Supervise.f_job;
        Alcotest.(check int) "times" 1 f.Supervise.f_times;
        Alcotest.(check bool) "class" true (f.Supervise.f_class = Supervise.Timeout)
    | Error m -> Alcotest.fail m);
    (match Supervise.fault_of_string "0:oom:99" with
    | Ok f -> Alcotest.(check int) "times" 99 f.Supervise.f_times
    | Error m -> Alcotest.fail m);
    List.iter
      (fun s ->
        Alcotest.(check bool) s true
          (match Supervise.fault_of_string s with Error _ -> true | Ok _ -> false))
      [ "nope"; "1:melted"; "-1:timeout"; "1:timeout:0"; "1:timeout:x:y" ]

  let tests =
    [
      Alcotest.test_case "exception mapping" `Quick mapping;
      Alcotest.test_case "failure string roundtrip" `Quick string_roundtrip;
      Alcotest.test_case "fault parsing" `Quick fault_parsing;
    ]
end

module Backoff_tests = struct
  let config ms = { Supervise.default_config with Supervise.backoff_ms = ms }

  let deterministic () =
    let c = config 50 in
    for job = 0 to 4 do
      for attempt = 1 to 4 do
        Alcotest.(check int)
          (Printf.sprintf "job %d attempt %d" job attempt)
          (Supervise.backoff_delay_ms c ~job ~attempt)
          (Supervise.backoff_delay_ms c ~job ~attempt)
      done
    done

  let exponential_envelope () =
    let c = config 50 in
    List.iter
      (fun attempt ->
        let d = Supervise.backoff_delay_ms c ~job:3 ~attempt in
        let base = 50 * (1 lsl (attempt - 1)) in
        Alcotest.(check bool)
          (Printf.sprintf "attempt %d in [%d, %d)" attempt base (base + 50))
          true
          (d >= base && d < base + 50))
      [ 1; 2; 3; 4; 5 ]

  let zero_disables () =
    Alcotest.(check int) "no sleep" 0
      (Supervise.backoff_delay_ms (config 0) ~job:1 ~attempt:3)

  let seed_changes_jitter () =
    let c1 = config 50 in
    let c2 = { c1 with Supervise.backoff_seed = 43 } in
    let differs =
      List.exists
        (fun job ->
          Supervise.backoff_delay_ms c1 ~job ~attempt:1
          <> Supervise.backoff_delay_ms c2 ~job ~attempt:1)
        [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    in
    Alcotest.(check bool) "some jitter differs across seeds" true differs

  let tests =
    [
      Alcotest.test_case "deterministic" `Quick deterministic;
      Alcotest.test_case "exponential envelope" `Quick exponential_envelope;
      Alcotest.test_case "zero disables" `Quick zero_disables;
      Alcotest.test_case "seed changes jitter" `Quick seed_changes_jitter;
    ]
end

module Run_tests = struct
  let jobs ?(apps = [ "fast-fair" ]) ?(seeds = [ 42 ]) () =
    match
      Supervise.jobs_of ~apps ~seeds ~policies:[ "round-robin" ] ~ops:150
    with
    | Ok js -> js
    | Error m -> Alcotest.fail m

  let fault j cls times =
    { Supervise.f_job = j; f_class = cls; f_times = times }

  let config ?(faults = []) ?stop_after ?(attempts = 3) ?(job_workers = 1) () =
    {
      Supervise.default_config with
      Supervise.backoff_ms = 0;
      attempts;
      faults;
      stop_after;
      job_workers;
    }

  let status_of i (b : Supervise.batch) =
    Supervise.status_string
      (List.nth b.Supervise.b_results i).Supervise.jr_status

  let enumeration () =
    match
      Supervise.jobs_of ~apps:[ "fast-fair"; "p-clht" ] ~seeds:[ 1; 2 ]
        ~policies:[ "round-robin"; "random" ] ~ops:100
    with
    | Error m -> Alcotest.fail m
    | Ok js ->
        Alcotest.(check int) "count" 8 (List.length js);
        let j0 = List.nth js 0 and j7 = List.nth js 7 in
        Alcotest.(check int) "ids in order" 0 j0.Supervise.j_id;
        Alcotest.(check string) "apps outermost" "fast-fair" j0.Supervise.j_app;
        Alcotest.(check string) "last app" "p-clht" j7.Supervise.j_app;
        Alcotest.(check int) "last seed" 2 j7.Supervise.j_seed;
        Alcotest.(check string) "last policy" "random" j7.Supervise.j_policy

  let unknown_rejected () =
    Alcotest.(check bool) "unknown app" true
      (match
         Supervise.jobs_of ~apps:[ "no-such-app" ] ~seeds:[ 1 ]
           ~policies:[ "random" ] ~ops:10
       with
      | Error _ -> true
      | Ok _ -> false);
    Alcotest.(check bool) "unknown policy" true
      (match
         Supervise.jobs_of ~apps:[ "fast-fair" ] ~seeds:[ 1 ]
           ~policies:[ "zigzag" ] ~ops:10
       with
      | Error _ -> true
      | Ok _ -> false)

  let clean_run () =
    let b = Supervise.run ~config:(config ()) (jobs ()) in
    Alcotest.(check string) "status" "ok" (status_of 0 b);
    Alcotest.(check bool) "not interrupted" false b.Supervise.b_interrupted

  let transient_fault_retried () =
    let b =
      Supervise.run
        ~config:(config ~faults:[ fault 0 Supervise.Timeout 1 ] ())
        (jobs ())
    in
    Alcotest.(check string) "status" "ok-retried" (status_of 0 b);
    match (List.hd b.Supervise.b_results).Supervise.jr_status with
    | Supervise.Done { d_attempts; d_failures; _ } ->
        Alcotest.(check int) "attempts" 2 d_attempts;
        Alcotest.(check bool) "history" true (d_failures = [ Supervise.Timeout ])
    | _ -> Alcotest.fail "expected Done"

  let oom_degrades_to_sequential () =
    let b =
      Supervise.run
        ~config:(config ~faults:[ fault 0 Supervise.Oom 1 ] ())
        (jobs ())
    in
    Alcotest.(check string) "status" "ok-sequential" (status_of 0 b)

  let permanent_fault_bounded () =
    let attempts = 3 in
    let b =
      Supervise.run
        ~config:(config ~attempts ~faults:[ fault 0 Supervise.Pipeline_exn 99 ] ())
        (jobs ())
    in
    Alcotest.(check string) "status" "failed" (status_of 0 b);
    match (List.hd b.Supervise.b_results).Supervise.jr_status with
    | Supervise.Gave_up { g_attempts; g_failures } ->
        Alcotest.(check int) "exactly the attempt bound" attempts g_attempts;
        Alcotest.(check int) "one failure per attempt" attempts
          (List.length g_failures)
    | _ -> Alcotest.fail "expected Gave_up"

  let breaker_quarantines () =
    (* Three seeds of one app; the first two exhaust their attempts, so
       with breaker_threshold = 2 the third must be quarantined without
       running. *)
    let js = jobs ~seeds:[ 1; 2; 3 ] () in
    let faults =
      [ fault 0 Supervise.Pipeline_exn 99; fault 1 Supervise.Pipeline_exn 99 ]
    in
    let b = Supervise.run ~config:(config ~faults ()) js in
    Alcotest.(check string) "first failed" "failed" (status_of 0 b);
    Alcotest.(check string) "second failed" "failed" (status_of 1 b);
    Alcotest.(check string) "third quarantined" "quarantined" (status_of 2 b);
    let c = Supervise.counters b in
    Alcotest.(check (option int)) "quarantined counter" (Some 1)
      (List.assoc_opt "supervise.quarantined" c)

  let success_resets_breaker () =
    (* fail, ok, fail: never two consecutive exhaustions, so no job is
       quarantined. *)
    let js = jobs ~seeds:[ 1; 2; 3 ] () in
    let faults =
      [ fault 0 Supervise.Pipeline_exn 99; fault 2 Supervise.Pipeline_exn 99 ]
    in
    let b = Supervise.run ~config:(config ~faults ()) js in
    Alcotest.(check string) "first failed" "failed" (status_of 0 b);
    Alcotest.(check string) "second ok" "ok" (status_of 1 b);
    Alcotest.(check string) "third failed (not quarantined)" "failed"
      (status_of 2 b)

  (* --- the durability contract --- *)

  let chaos_faults =
    [
      fault 0 Supervise.Corrupt_trace 1;
      fault 1 Supervise.Timeout 1;
      fault 2 Supervise.Oom 1;
      fault 3 Supervise.Worker_lost 99;
    ]

  let chaos_jobs () = jobs ~apps:[ "fast-fair"; "p-clht" ] ~seeds:[ 42; 43 ] ()

  let kill_resume_byte_identical () =
    let js = chaos_jobs () in
    let golden = Supervise.run ~config:(config ~faults:chaos_faults ()) js in
    with_tmp (fun journal ->
        let killed =
          Supervise.run ~journal
            ~config:(config ~faults:chaos_faults ~stop_after:2 ())
            js
        in
        Alcotest.(check bool) "interrupted" true killed.Supervise.b_interrupted;
        Alcotest.(check int) "prefix" 2
          (List.length killed.Supervise.b_results);
        let resumed =
          Supervise.run ~journal ~resume:true
            ~config:(config ~faults:chaos_faults ())
            js
        in
        Alcotest.(check int) "replayed"
          2
          (List.length
             (List.filter
                (fun jr -> jr.Supervise.jr_replayed)
                resumed.Supervise.b_results));
        Alcotest.(check string) "byte-identical merged report"
          (Supervise.merged_json golden)
          (Supervise.merged_json resumed))

  let resume_of_complete_journal_is_pure_replay () =
    let js = chaos_jobs () in
    with_tmp (fun journal ->
        let golden =
          Supervise.run ~journal ~config:(config ~faults:chaos_faults ()) js
        in
        let resumed =
          Supervise.run ~journal ~resume:true
            ~config:(config ~faults:chaos_faults ())
            js
        in
        Alcotest.(check bool) "all replayed" true
          (List.for_all
             (fun jr -> jr.Supervise.jr_replayed)
             resumed.Supervise.b_results);
        Alcotest.(check string) "byte-identical"
          (Supervise.merged_json golden)
          (Supervise.merged_json resumed))

  let resume_survives_torn_tail () =
    (* Kill "mid-write": truncate the journal inside its final record.
       The salvage keeps the valid prefix; the torn job re-runs; the
       merged report is still byte-identical. *)
    let js = chaos_jobs () in
    let golden = Supervise.run ~config:(config ~faults:chaos_faults ()) js in
    with_tmp (fun journal ->
        ignore
          (Supervise.run ~journal
             ~config:(config ~faults:chaos_faults ~stop_after:3 ())
             js);
        let full = In_channel.with_open_bin journal In_channel.input_all in
        Out_channel.with_open_bin journal (fun oc ->
            Out_channel.output_string oc
              (String.sub full 0 (String.length full - 7)));
        let resumed =
          Supervise.run ~journal ~resume:true
            ~config:(config ~faults:chaos_faults ())
            js
        in
        Alcotest.(check string) "byte-identical after torn tail"
          (Supervise.merged_json golden)
          (Supervise.merged_json resumed))

  let resume_mismatch_refused () =
    let js = chaos_jobs () in
    with_tmp (fun journal ->
        ignore (Supervise.run ~journal ~config:(config ()) js);
        Alcotest.(check bool) "mismatch raises" true
          (match
             Supervise.run ~journal ~resume:true
               ~config:(config ~faults:chaos_faults ())
               js
           with
          | _ -> false
          | exception Supervise.Resume_mismatch _ -> true))

  (* --- job-level concurrency: byte-identity across widths --- *)

  let concurrent_byte_identical () =
    (* Same declaration, every fault class injected: four concurrent
       per-app chains must reproduce the sequential walk byte for byte —
       statuses (retries, degradation, the breaker) included. *)
    let js = chaos_jobs () in
    let seq = Supervise.run ~config:(config ~faults:chaos_faults ()) js in
    let par =
      Supervise.run ~config:(config ~faults:chaos_faults ~job_workers:4 ()) js
    in
    Alcotest.(check string) "merged report byte-identical"
      (Supervise.merged_json seq)
      (Supervise.merged_json par);
    List.iteri
      (fun i _ ->
        Alcotest.(check string)
          (Printf.sprintf "status %d" i)
          (status_of i seq) (status_of i par))
      js

  let concurrent_breaker_quarantines () =
    (* The breaker is per-app state; a chain running concurrently with
       other apps' chains must quarantine exactly like the sequential
       walk. *)
    let js = jobs ~seeds:[ 1; 2; 3 ] () in
    let faults =
      [ fault 0 Supervise.Pipeline_exn 99; fault 1 Supervise.Pipeline_exn 99 ]
    in
    let b = Supervise.run ~config:(config ~faults ~job_workers:4 ()) js in
    Alcotest.(check string) "first failed" "failed" (status_of 0 b);
    Alcotest.(check string) "second failed" "failed" (status_of 1 b);
    Alcotest.(check string) "third quarantined" "quarantined" (status_of 2 b)

  let concurrent_kill_resume () =
    (* A concurrent batch killed mid-flight and resumed concurrently
       still reproduces the sequential golden report: completed jobs
       replay from the journal by id, in-flight jobs re-run from
       attempt 1. *)
    let js = chaos_jobs () in
    let golden = Supervise.run ~config:(config ~faults:chaos_faults ()) js in
    with_tmp (fun journal ->
        let killed =
          Supervise.run ~journal
            ~config:(config ~faults:chaos_faults ~stop_after:2 ~job_workers:4 ())
            js
        in
        Alcotest.(check bool) "interrupted" true killed.Supervise.b_interrupted;
        let resumed =
          Supervise.run ~journal ~resume:true
            ~config:(config ~faults:chaos_faults ~job_workers:4 ())
            js
        in
        Alcotest.(check string) "byte-identical merged report"
          (Supervise.merged_json golden)
          (Supervise.merged_json resumed))

  (* --- the result cache --- *)

  let cache_preserves_report () =
    (* A cache-enabled batch embeds cached bytes on hits; re-running the
       same declaration against the same cache hits for every job and
       still produces the identical merged report. *)
    let js = chaos_jobs () in
    let golden = Supervise.run ~config:(config ()) js in
    let cache = Hawkset.Result_cache.create () in
    let cold = Supervise.run ~cache ~config:(config ()) js in
    Alcotest.(check string) "cold run identical"
      (Supervise.merged_json golden)
      (Supervise.merged_json cold);
    Alcotest.(check bool) "cache populated" true
      (Hawkset.Result_cache.length cache > 0);
    let warm = Supervise.run ~cache ~config:(config ()) js in
    Alcotest.(check string) "warm run identical"
      (Supervise.merged_json golden)
      (Supervise.merged_json warm);
    let hits =
      Option.value ~default:0
        (List.assoc_opt "cache.hits" (Hawkset.Result_cache.stats cache))
    in
    Alcotest.(check bool) "warm run hit the cache" true (hits >= List.length js)

  let cache_concurrent_identical () =
    let js = chaos_jobs () in
    let golden = Supervise.run ~config:(config ()) js in
    let cache = Hawkset.Result_cache.create () in
    let b =
      Supervise.run ~cache ~config:(config ~job_workers:4 ()) js
    in
    Alcotest.(check string) "concurrent cached run identical"
      (Supervise.merged_json golden)
      (Supervise.merged_json b)

  let merged_json_shape () =
    let b =
      Supervise.run
        ~config:(config ~faults:[ fault 0 Supervise.Timeout 1 ] ())
        (jobs ())
    in
    let json = Supervise.merged_json b in
    List.iter
      (fun needle ->
        let re = Str.regexp_string needle in
        Alcotest.(check bool) needle true
          (match Str.search_forward re json 0 with
          | _ -> true
          | exception Not_found -> false))
      [
        "\"schema\":\"hawkset.batch_report/1\"";
        "\"status\":\"ok-retried\"";
        "\"failures\":[\"timeout\"]";
        "\"races\":[";
      ]

  let tests =
    [
      Alcotest.test_case "job enumeration" `Quick enumeration;
      Alcotest.test_case "unknown app/policy rejected" `Quick unknown_rejected;
      Alcotest.test_case "clean run" `Quick clean_run;
      Alcotest.test_case "transient fault retried" `Quick
        transient_fault_retried;
      Alcotest.test_case "oom degrades to sequential" `Quick
        oom_degrades_to_sequential;
      Alcotest.test_case "permanent fault bounded" `Quick
        permanent_fault_bounded;
      Alcotest.test_case "breaker quarantines" `Quick breaker_quarantines;
      Alcotest.test_case "success resets breaker" `Quick success_resets_breaker;
      Alcotest.test_case "kill+resume byte-identical" `Quick
        kill_resume_byte_identical;
      Alcotest.test_case "complete journal is pure replay" `Quick
        resume_of_complete_journal_is_pure_replay;
      Alcotest.test_case "resume survives torn tail" `Quick
        resume_survives_torn_tail;
      Alcotest.test_case "resume mismatch refused" `Quick
        resume_mismatch_refused;
      Alcotest.test_case "concurrent byte-identical" `Quick
        concurrent_byte_identical;
      Alcotest.test_case "concurrent breaker quarantines" `Quick
        concurrent_breaker_quarantines;
      Alcotest.test_case "concurrent kill+resume byte-identical" `Quick
        concurrent_kill_resume;
      Alcotest.test_case "cache preserves report" `Quick cache_preserves_report;
      Alcotest.test_case "concurrent cached run identical" `Quick
        cache_concurrent_identical;
      Alcotest.test_case "merged json shape" `Quick merged_json_shape;
    ]
end

let () =
  Alcotest.run "supervise"
    [
      ("journal", Journal_tests.tests);
      ("budget", Budget_tests.tests);
      ("classify", Classify_tests.tests);
      ("backoff", Backoff_tests.tests);
      ("run", Run_tests.tests);
    ]
