(* Tests for the timeline profiler and bug provenance: fixed-seed lane
   signatures are byte-identical (the event-sequence determinism
   contract), ring overflow drops new events without corrupting recorded
   ones, the Chrome-trace export is valid JSON with per-lane monotone
   timestamps, and every analysis report carries a witness. *)

let contains = Test_util.contains

let entry =
  match Pmapps.Registry.find "fast-fair" with
  | Some e -> e
  | None -> Alcotest.fail "fast-fair not registered"

(* Every test leaves the timeline disabled and empty at default capacity,
   so test order never matters. *)
let with_timeline f =
  Obs.Timeline.set_capacity 8192;
  Obs.Timeline.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Timeline.set_enabled false;
      Obs.Timeline.set_capacity 8192)
    f

let with_fake_clock src f =
  Obs.Clock.set_source src;
  Fun.protect ~finally:(fun () -> Obs.Clock.set_source Unix.gettimeofday) f

let pipeline_signatures ~jobs ~seed ~ops () =
  let report = entry.Pmapps.Registry.run ~seed ~ops () in
  Obs.Timeline.reset ();
  let config = { Hawkset.Pipeline.default with Hawkset.Pipeline.jobs } in
  let _ = Hawkset.Pipeline.run ~config report.Machine.Sched.trace in
  List.map
    (fun lane -> (lane, Obs.Timeline.signature lane))
    (Obs.Timeline.used_lanes ())

(* --- ring behaviour --------------------------------------------------- *)

module Ring_tests = struct
  let overflow_drops_new () =
    with_timeline (fun () ->
        Obs.Timeline.set_capacity 8;
        let h = Obs.Timeline.name "ring_test" in
        for i = 0 to 10 do
          Obs.Timeline.instant h ~arg:i
        done;
        Alcotest.(check int) "drop counter" 3 (Obs.Timeline.dropped 0);
        let evs = Obs.Timeline.events 0 in
        Alcotest.(check int) "earlier events intact" 8 (List.length evs);
        List.iteri
          (fun i (e : Obs.Timeline.event) ->
            Alcotest.(check string) "name" "ring_test" e.Obs.Timeline.ev_name;
            Alcotest.(check int) "arg in order" i e.Obs.Timeline.ev_arg)
          evs;
        Alcotest.(check bool)
          "signature records the drops" true
          (contains ~needle:"dropped 3" (Obs.Timeline.signature 0)))

  let disabled_records_nothing () =
    Obs.Timeline.reset ();
    Obs.Timeline.set_enabled false;
    Obs.Timeline.instant (Obs.Timeline.name "off") ~arg:1;
    Alcotest.(check (list int)) "no lanes" [] (Obs.Timeline.used_lanes ())

  let monotone_clamp () =
    (* A clock stepping backwards must never produce an out-of-order
       lane: timestamps clamp to the lane's last. *)
    let t = ref 100.0 in
    with_fake_clock
      (fun () ->
        t := !t -. 1.0;
        !t)
      (fun () ->
        with_timeline (fun () ->
            Obs.Timeline.reset ();
            let h = Obs.Timeline.name "clamp" in
            for i = 0 to 4 do
              Obs.Timeline.instant h ~arg:i
            done;
            let ts =
              List.map
                (fun (e : Obs.Timeline.event) -> e.Obs.Timeline.ev_ts)
                (Obs.Timeline.events 0)
            in
            Alcotest.(check bool)
              "timestamps non-decreasing" true
              (ts = List.sort compare ts)))

  let signature_ignores_timestamps () =
    let record_with src =
      with_fake_clock src (fun () ->
          with_timeline (fun () ->
              Obs.Timeline.reset ();
              let h = Obs.Timeline.name "sig" in
              Obs.Timeline.begin_ h ~arg:7;
              Obs.Timeline.instant h ~arg:8;
              Obs.Timeline.end_ h ~arg:9;
              Obs.Timeline.signature 0))
    in
    let fast = ref 0.0 in
    let slow = ref 1000.0 in
    let s1 =
      record_with (fun () ->
          fast := !fast +. 0.001;
          !fast)
    in
    let s2 =
      record_with (fun () ->
          slow := !slow +. 42.0;
          !slow)
    in
    Alcotest.(check string) "signatures clock-independent" s1 s2;
    Alcotest.(check string)
      "signature shape" "B sig 7\nI sig 8\nE sig 9\ndropped 0\n" s1

  let lane_binding () =
    with_timeline (fun () ->
        Obs.Timeline.reset ();
        let h = Obs.Timeline.name "lane_test" in
        Obs.Timeline.instant h ~arg:0;
        Obs.Timeline.with_lane 3 (fun () -> Obs.Timeline.instant h ~arg:3);
        Obs.Timeline.instant h ~arg:0;
        Alcotest.(check int) "restored lane" 0 (Obs.Timeline.current_lane ());
        Alcotest.(check (list int))
          "used lanes" [ 0; 3 ]
          (Obs.Timeline.used_lanes ());
        Alcotest.(check int) "lane 0 events" 2
          (List.length (Obs.Timeline.events 0));
        Alcotest.(check int) "lane 3 events" 1
          (List.length (Obs.Timeline.events 3)))

  let tests =
    [
      Alcotest.test_case "overflow drops new, keeps old" `Quick
        overflow_drops_new;
      Alcotest.test_case "disabled records nothing" `Quick
        disabled_records_nothing;
      Alcotest.test_case "monotone clamp" `Quick monotone_clamp;
      Alcotest.test_case "signature ignores timestamps" `Quick
        signature_ignores_timestamps;
      Alcotest.test_case "lane binding" `Quick lane_binding;
    ]
end

(* --- fixed-seed determinism ------------------------------------------- *)

module Determinism_tests = struct
  (* The acceptance criterion: two same-seed runs produce byte-identical
     per-lane event sequences (timestamps excluded by {!signature}). *)
  let same_seed_same_signatures () =
    with_timeline (fun () ->
        let s1 = pipeline_signatures ~jobs:2 ~seed:7 ~ops:400 () in
        let s2 = pipeline_signatures ~jobs:2 ~seed:7 ~ops:400 () in
        Alcotest.(check int) "two lanes used" 2 (List.length s1);
        Alcotest.(check (list (pair int string)))
          "per-lane signatures byte-identical" s1 s2)

  let expected_lane0_shape () =
    with_timeline (fun () ->
        let sigs = pipeline_signatures ~jobs:2 ~seed:7 ~ops:400 () in
        let lane0 = List.assoc 0 sigs in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("lane 0 has " ^ needle) true
              (contains ~needle lane0))
          [
            "B pipeline"; "B pipeline.collect"; "B collector.collect";
            "E collector.collect"; "B pipeline.analyse"; "B analysis.shard 0";
            "E analysis.shard 0"; "E pipeline";
          ];
        (* Shard 1 runs on the pool worker's lane, never the caller's. *)
        Alcotest.(check bool) "shard 1 not on lane 0" false
          (contains ~needle:"B analysis.shard 1" lane0);
        let lane1 = List.assoc 1 sigs in
        Alcotest.(check string)
          "worker lane is exactly its shard"
          "B analysis.shard 1\nE analysis.shard 1\ndropped 0\n" lane1)

  let sequential_uses_one_lane () =
    with_timeline (fun () ->
        let sigs = pipeline_signatures ~jobs:1 ~seed:7 ~ops:400 () in
        Alcotest.(check (list int)) "only the caller lane" [ 0 ]
          (List.map fst sigs);
        Alcotest.(check bool) "sequential analysis event" true
          (contains ~needle:"B analysis.sequential" (List.assoc 0 sigs)))

  let tests =
    [
      Alcotest.test_case "same seed, same signatures" `Slow
        same_seed_same_signatures;
      Alcotest.test_case "lane 0 event shape" `Slow expected_lane0_shape;
      Alcotest.test_case "jobs=1 stays on lane 0" `Slow
        sequential_uses_one_lane;
    ]
end

(* --- Chrome-trace export ---------------------------------------------- *)

module Mini_json = Test_util.Mini_json

module Export_tests = struct
  let export () =
    with_timeline (fun () ->
        ignore (pipeline_signatures ~jobs:4 ~seed:7 ~ops:400 ());
        Obs.Timeline.to_chrome_json ())

  let valid_json_and_monotone () =
    let raw = export () in
    let j = Mini_json.parse raw in
    let evs =
      match Mini_json.member "traceEvents" j with
      | Mini_json.Arr evs -> evs
      | _ -> Alcotest.fail "traceEvents not an array"
    in
    Alcotest.(check bool) "has events" true (List.length evs > 0);
    (* Per-lane timestamps are monotone in recording order. *)
    let last = Hashtbl.create 8 in
    let lanes = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let str_mem k =
          match Mini_json.member k e with
          | Mini_json.Str s -> s
          | _ -> Alcotest.fail (k ^ " not a string")
        in
        let num_mem k =
          match Mini_json.member k e with
          | Mini_json.Num x -> x
          | _ -> Alcotest.fail (k ^ " not a number")
        in
        let tid = int_of_float (num_mem "tid") in
        match str_mem "ph" with
        | "M" ->
            Alcotest.(check string) "metadata name" "thread_name"
              (str_mem "name");
            Hashtbl.replace lanes tid ()
        | "B" | "E" | "i" ->
            let ts = num_mem "ts" in
            Alcotest.(check bool) "ts non-negative" true (ts >= 0.0);
            (match Hashtbl.find_opt last tid with
            | Some prev ->
                Alcotest.(check bool)
                  (Printf.sprintf "lane %d monotone" tid)
                  true (ts >= prev)
            | None -> ());
            Hashtbl.replace last tid ts
        | ph -> Alcotest.fail ("unexpected ph " ^ ph))
      evs;
    (* One thread_name lane per pool domain: jobs=4 -> lanes 0..3. *)
    Alcotest.(check int) "4 labelled lanes" 4 (Hashtbl.length lanes);
    List.iter
      (fun lane ->
        Alcotest.(check bool)
          (Printf.sprintf "lane %d labelled" lane)
          true (Hashtbl.mem lanes lane))
      [ 0; 1; 2; 3 ]

  let begin_end_nesting () =
    (* B/E events on a lane must balance like parentheses, or Perfetto
       renders garbage. *)
    let raw = export () in
    let j = Mini_json.parse raw in
    let evs =
      match Mini_json.member "traceEvents" j with
      | Mini_json.Arr evs -> evs
      | _ -> Alcotest.fail "traceEvents not an array"
    in
    let depth = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let tid =
          match Mini_json.member "tid" e with
          | Mini_json.Num x -> int_of_float x
          | _ -> Alcotest.fail "tid"
        in
        let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
        match Mini_json.member "ph" e with
        | Mini_json.Str "B" -> Hashtbl.replace depth tid (d + 1)
        | Mini_json.Str "E" ->
            Alcotest.(check bool) "E has a matching B" true (d > 0);
            Hashtbl.replace depth tid (d - 1)
        | _ -> ())
      evs;
    Hashtbl.iter
      (fun tid d ->
        Alcotest.(check int) (Printf.sprintf "lane %d balanced" tid) 0 d)
      depth

  let duration_gauges () =
    let fake = ref 0.0 in
    with_fake_clock
      (fun () ->
        fake := !fake +. 0.5;
        !fake)
      (fun () ->
        with_timeline (fun () ->
            Obs.Timeline.reset ();
            let h = Obs.Timeline.name "gauge_test" in
            Obs.Timeline.begin_ h;
            Obs.Timeline.end_ h;
            let gauges = Obs.Timeline.duration_gauges () in
            Alcotest.(check (option (float 1e-9)))
              "count" (Some 1.0)
              (List.assoc_opt "timeline.gauge_test.count" gauges);
            Alcotest.(check (option (float 1e-9)))
              "total" (Some 0.5)
              (List.assoc_opt "timeline.gauge_test.total_s" gauges);
            Alcotest.(check (option (float 1e-9)))
              "max" (Some 0.5)
              (List.assoc_opt "timeline.gauge_test.max_s" gauges)))

  let tests =
    [
      Alcotest.test_case "valid JSON, monotone per lane" `Slow
        valid_json_and_monotone;
      Alcotest.test_case "B/E balance per lane" `Slow begin_end_nesting;
      Alcotest.test_case "duration gauges" `Quick duration_gauges;
    ]
end

(* --- bug provenance --------------------------------------------------- *)

module Provenance_tests = struct
  let races ~jobs =
    let report = entry.Pmapps.Registry.run ~seed:7 ~ops:400 () in
    let config = { Hawkset.Pipeline.default with Hawkset.Pipeline.jobs } in
    Hawkset.Pipeline.races ~config report.Machine.Sched.trace

  let every_report_has_a_witness () =
    let races = races ~jobs:1 in
    Alcotest.(check bool) "found races" true (Hawkset.Report.count races > 0);
    List.iter
      (fun (r : Hawkset.Report.race) ->
        match r.Hawkset.Report.witness with
        | Some w ->
            (* The effective lockset is an intersection of the store's:
               every effective lock was held at the store. *)
            List.iter
              (fun l ->
                Alcotest.(check bool) "eff subset of store" true
                  (List.mem l w.Hawkset.Report.wt_store_locks))
              w.Hawkset.Report.wt_eff_locks;
            (* The race test requires eff ∩ load = ∅. *)
            List.iter
              (fun l ->
                Alcotest.(check bool) "eff disjoint from load" true
                  (not (List.mem l w.Hawkset.Report.wt_load_locks)))
              w.Hawkset.Report.wt_eff_locks
        | None -> Alcotest.fail "report without witness")
      (Hawkset.Report.sorted races)

  let witness_in_json () =
    let j = Hawkset.Report.to_json (races ~jobs:1) in
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("json has " ^ needle) true (contains ~needle j))
      [
        {|"witness":{|}; {|"store_lockset":|}; {|"effective_lockset":|};
        {|"load_lockset":|}; {|"store_vclock":|}; {|"window_end_vclock":|};
        {|"load_vclock":|};
      ]

  let witness_identical_across_jobs () =
    (* Witnesses ride the first-witness-wins merge, so the full JSON —
       provenance included — is byte-identical for any jobs count. *)
    Alcotest.(check string)
      "to_json identical jobs=1 vs jobs=4"
      (Hawkset.Report.to_json (races ~jobs:1))
      (Hawkset.Report.to_json (races ~jobs:4))

  let pp_witness_renders () =
    let races = races ~jobs:1 in
    match
      List.filter_map
        (fun (r : Hawkset.Report.race) -> r.Hawkset.Report.witness)
        (Hawkset.Report.sorted races)
    with
    | [] -> Alcotest.fail "no witness to render"
    | w :: _ ->
        let s = Format.asprintf "%a" Hawkset.Report.pp_witness w in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("pp has " ^ needle) true
              (contains ~needle s))
          [ "witness:"; "effective lockset"; "store vclock"; "load vclock" ]

  let tests =
    [
      Alcotest.test_case "every report has a witness" `Slow
        every_report_has_a_witness;
      Alcotest.test_case "witness in to_json" `Slow witness_in_json;
      Alcotest.test_case "witness identical across jobs" `Slow
        witness_identical_across_jobs;
      Alcotest.test_case "pp_witness renders" `Slow pp_witness_renders;
    ]
end

let () =
  Alcotest.run "timeline"
    [
      ("ring", Ring_tests.tests);
      ("determinism", Determinism_tests.tests);
      ("export", Export_tests.tests);
      ("provenance", Provenance_tests.tests);
    ]
