(* Unit and property tests for the trace substrate: ids, sites, events,
   trace buffers and the interning tables. *)

let site = Trace.Site.v

module Tid_tests = struct
  let roundtrip () =
    Alcotest.(check int) "to_int (of_int 7)" 7
      (Trace.Tid.to_int (Trace.Tid.of_int 7))

  let main_is_zero () =
    Alcotest.(check int) "main" 0 (Trace.Tid.to_int Trace.Tid.main)

  let negative_rejected () =
    Alcotest.check_raises "negative"
      (Invalid_argument "Tid.of_int: negative thread id") (fun () ->
        ignore (Trace.Tid.of_int (-1)))

  let equality () =
    Alcotest.(check bool) "equal" true
      (Trace.Tid.equal (Trace.Tid.of_int 3) (Trace.Tid.of_int 3));
    Alcotest.(check bool) "not equal" false
      (Trace.Tid.equal (Trace.Tid.of_int 3) (Trace.Tid.of_int 4))

  let tests =
    [
      Alcotest.test_case "roundtrip" `Quick roundtrip;
      Alcotest.test_case "main is zero" `Quick main_is_zero;
      Alcotest.test_case "negative rejected" `Quick negative_rejected;
      Alcotest.test_case "equality" `Quick equality;
    ]
end

module Site_tests = struct
  let of_pos () =
    let s = Trace.Site.of_pos __POS__ in
    Alcotest.(check string) "file" "test/test_trace.ml" s.Trace.Site.file;
    Alcotest.(check bool) "line positive" true (s.Trace.Site.line > 0)

  let location () =
    Alcotest.(check string) "location" "a.ml:12"
      (Trace.Site.location (site "a.ml" 12))

  let equal_ignores_nothing () =
    Alcotest.(check bool) "same" true
      (Trace.Site.equal (site "a.ml" 1) (site "a.ml" 1));
    Alcotest.(check bool) "diff line" false
      (Trace.Site.equal (site "a.ml" 1) (site "a.ml" 2));
    Alcotest.(check bool) "diff frames" false
      (Trace.Site.equal
         (site ~frames:[ "f" ] "a.ml" 1)
         (site ~frames:[ "g" ] "a.ml" 1))

  let compare_total_order () =
    let a = site "a.ml" 1 and b = site "b.ml" 1 in
    Alcotest.(check bool) "a < b" true (Trace.Site.compare a b < 0);
    Alcotest.(check bool) "b > a" true (Trace.Site.compare b a > 0);
    Alcotest.(check int) "a = a" 0 (Trace.Site.compare a a)

  let backtrace_rendering () =
    let s = site ~frames:[ "inner"; "outer" ] "a.ml" 3 in
    let str = Format.asprintf "%a" Trace.Site.pp_backtrace s in
    Alcotest.(check bool) "mentions frames" true
      (String.length str > String.length "a.ml:3")

  let tests =
    [
      Alcotest.test_case "of_pos uses __POS__" `Quick of_pos;
      Alcotest.test_case "location format" `Quick location;
      Alcotest.test_case "equality" `Quick equal_ignores_nothing;
      Alcotest.test_case "compare is a total order" `Quick compare_total_order;
      Alcotest.test_case "backtrace rendering" `Quick backtrace_rendering;
    ]
end

module Event_tests = struct
  let s = site "x.ml" 1

  let tid_of_each_kind () =
    let t0 = Trace.Tid.of_int 0 and t1 = Trace.Tid.of_int 1 in
    let check name ev expect =
      Alcotest.(check int) name expect (Trace.Tid.to_int (Trace.Event.tid ev))
    in
    check "store"
      (Trace.Event.Store
         { tid = t1; addr = 0; size = 8; site = s; non_temporal = false })
      1;
    check "load" (Trace.Event.Load { tid = t1; addr = 0; size = 8; site = s }) 1;
    check "flush"
      (Trace.Event.Flush { tid = t1; line = 0; kind = Trace.Event.Clwb; site = s })
      1;
    check "fence" (Trace.Event.Fence { tid = t1; site = s }) 1;
    check "create" (Trace.Event.Thread_create { parent = t0; child = t1 }) 0;
    check "join" (Trace.Event.Thread_join { waiter = t0; joined = t1 }) 0

  let pm_access_classification () =
    let t = Trace.Tid.main in
    Alcotest.(check bool) "store" true
      (Trace.Event.is_pm_access
         (Trace.Event.Store
            { tid = t; addr = 0; size = 1; site = s; non_temporal = false }));
    Alcotest.(check bool) "fence" false
      (Trace.Event.is_pm_access (Trace.Event.Fence { tid = t; site = s }))

  let tests =
    [
      Alcotest.test_case "tid of each kind" `Quick tid_of_each_kind;
      Alcotest.test_case "is_pm_access" `Quick pm_access_classification;
    ]
end

module Tracebuf_tests = struct
  let s = site "x.ml" 1
  let t0 = Trace.Tid.main

  let mk_load i =
    Trace.Event.Load { tid = t0; addr = i; size = 8; site = s }

  let push_get () =
    let tb = Trace.Tracebuf.create ~capacity:2 () in
    for i = 0 to 99 do
      Trace.Tracebuf.push tb (mk_load i)
    done;
    Alcotest.(check int) "length" 100 (Trace.Tracebuf.length tb);
    (match Trace.Tracebuf.get tb 57 with
    | Trace.Event.Load { addr; _ } -> Alcotest.(check int) "addr" 57 addr
    | _ -> Alcotest.fail "wrong event");
    Alcotest.check_raises "oob"
      (Invalid_argument "Tracebuf.get: index out of bounds") (fun () ->
        ignore (Trace.Tracebuf.get tb 100))

  let of_list_roundtrip () =
    let evs = List.init 10 mk_load in
    let tb = Trace.Tracebuf.of_list evs in
    Alcotest.(check int) "length" 10 (Trace.Tracebuf.length tb);
    Alcotest.(check bool) "roundtrip" true
      (List.for_all2
         (fun a b -> a == b)
         evs (Trace.Tracebuf.to_list tb))

  let stats () =
    let tb =
      Trace.Tracebuf.of_list
        [
          mk_load 0;
          Trace.Event.Store
            { tid = t0; addr = 0; size = 8; site = s; non_temporal = false };
          Trace.Event.Flush
            { tid = t0; line = 0; kind = Trace.Event.Clwb; site = s };
          Trace.Event.Fence { tid = t0; site = s };
          Trace.Event.Lock_acquire
            { tid = t0; lock = Trace.Lock_id.of_int 0; site = s };
          Trace.Event.Lock_release
            { tid = t0; lock = Trace.Lock_id.of_int 0; site = s };
          Trace.Event.Thread_create
            { parent = t0; child = Trace.Tid.of_int 1 };
        ]
    in
    let st = Trace.Tracebuf.stats tb in
    Alcotest.(check int) "stores" 1 st.Trace.Tracebuf.stores;
    Alcotest.(check int) "loads" 1 st.Trace.Tracebuf.loads;
    Alcotest.(check int) "flushes" 1 st.Trace.Tracebuf.flushes;
    Alcotest.(check int) "fences" 1 st.Trace.Tracebuf.fences;
    Alcotest.(check int) "lock ops" 2 st.Trace.Tracebuf.lock_ops;
    Alcotest.(check int) "thread ops" 1 st.Trace.Tracebuf.thread_ops

  let fold_counts () =
    let tb = Trace.Tracebuf.of_list (List.init 25 mk_load) in
    Alcotest.(check int) "fold" 25
      (Trace.Tracebuf.fold (fun acc _ -> acc + 1) 0 tb)

  let tests =
    [
      Alcotest.test_case "push/get with growth" `Quick push_get;
      Alcotest.test_case "of_list roundtrip" `Quick of_list_roundtrip;
      Alcotest.test_case "stats" `Quick stats;
      Alcotest.test_case "fold" `Quick fold_counts;
    ]
end

module Interner_tests = struct
  module I = Trace.Interner.Make (struct
    type t = string

    let equal = String.equal
    let hash = Hashtbl.hash
  end)

  let dedup () =
    let t = I.create () in
    let a = I.intern t "hello" in
    let b = I.intern t "world" in
    let a' = I.intern t "hello" in
    Alcotest.(check int) "same id" a a';
    Alcotest.(check bool) "distinct ids" true (a <> b);
    Alcotest.(check int) "count" 2 (I.count t);
    Alcotest.(check string) "get" "world" (I.get t b)

  let unknown_id () =
    let t = I.create () in
    Alcotest.check_raises "unknown" (Invalid_argument "Interner.get: unknown id")
      (fun () -> ignore (I.get t 0))

  let dense_ids =
    QCheck.Test.make ~name:"interner ids are dense and stable" ~count:100
      QCheck.(small_list small_string)
      (fun strings ->
        let t = I.create () in
        let ids = List.map (I.intern t) strings in
        (* Re-interning yields identical ids. *)
        let ids' = List.map (I.intern t) strings in
        ids = ids'
        && List.for_all (fun id -> id >= 0 && id < I.count t) ids
        && List.for_all2
             (fun s id -> String.equal (I.get t id) s)
             strings ids)

  let tests =
    [
      Alcotest.test_case "dedup" `Quick dedup;
      Alcotest.test_case "unknown id" `Quick unknown_id;
      QCheck_alcotest.to_alcotest dense_ids;
    ]
end

module Trace_io_tests = struct
  let t0 = Trace.Tid.main
  let t1 = Trace.Tid.of_int 1

  let sample_events =
    [
      Trace.Event.Store
        { tid = t0; addr = 128; size = 8;
          site = Trace.Site.v ~frames:[ "insert"; "main" ] "a.ml" 10;
          non_temporal = false };
      Trace.Event.Store
        { tid = t1; addr = 64; size = 4; site = Trace.Site.v "b.ml" 2;
          non_temporal = true };
      Trace.Event.Load
        { tid = t1; addr = 128; size = 8; site = Trace.Site.v "a.ml" 99 };
      Trace.Event.Flush
        { tid = t0; line = 128; kind = Trace.Event.Clflushopt;
          site = Trace.Site.v "a.ml" 11 };
      Trace.Event.Fence { tid = t0; site = Trace.Site.v "a.ml" 12 };
      Trace.Event.Lock_acquire
        { tid = t1; lock = Trace.Lock_id.of_int 3; site = Trace.Site.v "c.ml" 5 };
      Trace.Event.Lock_release
        { tid = t1; lock = Trace.Lock_id.of_int 3; site = Trace.Site.v "c.ml" 6 };
      Trace.Event.Thread_create { parent = t0; child = t1 };
      Trace.Event.Thread_join { waiter = t0; joined = t1 };
    ]

  let line_roundtrip () =
    List.iter
      (fun ev ->
        let line = Trace.Trace_io.event_to_line ev in
        let ev' = Trace.Trace_io.event_of_line line in
        Alcotest.(check string) line line (Trace.Trace_io.event_to_line ev'))
      sample_events

  let file_roundtrip () =
    let path = Filename.temp_file "hawkset" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let t = Trace.Tracebuf.of_list sample_events in
        Trace.Trace_io.save path t;
        let t' = Trace.Trace_io.load path in
        Alcotest.(check int) "length" (Trace.Tracebuf.length t)
          (Trace.Tracebuf.length t');
        List.iteri
          (fun i ev ->
            Alcotest.(check string)
              (Printf.sprintf "event %d" i)
              (Trace.Trace_io.event_to_line ev)
              (Trace.Trace_io.event_to_line (Trace.Tracebuf.get t' i)))
          sample_events)

  let comments_and_blanks_skipped () =
    let path = Filename.temp_file "hawkset" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc "# a comment

M 0 x.ml:1
";
        close_out oc;
        Alcotest.(check int) "one event" 1
          (Trace.Tracebuf.length (Trace.Trace_io.load path)))

  let parse_errors () =
    let bad line =
      try
        ignore (Trace.Trace_io.event_of_line line);
        Alcotest.failf "expected parse error for %S" line
      with Trace.Trace_io.Parse_error _ -> ()
    in
    bad "X 0 1 2";
    bad "S 0 nonint 8 0 a.ml:1";
    bad "S 0 1 8 0 nodolon";
    bad "F 0 64 notakind a.ml:1"

  let analysis_survives_roundtrip () =
    (* Serialize a racy trace; the analysis result must be identical. *)
    let evs =
      [
        Trace.Event.Store
          { tid = t0; addr = 128; size = 8; site = Trace.Site.v "r.ml" 1;
            non_temporal = false };
        Trace.Event.Thread_create { parent = t0; child = t1 };
        Trace.Event.Load
          { tid = t1; addr = 128; size = 8; site = Trace.Site.v "r.ml" 2 };
      ]
    in
    let path = Filename.temp_file "hawkset" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let t = Trace.Tracebuf.of_list evs in
        Trace.Trace_io.save path t;
        let t' = Trace.Trace_io.load path in
        Alcotest.(check int) "same verdict" 1
          (Hawkset.Report.count
             (Hawkset.Pipeline.races ~config:Hawkset.Pipeline.no_irh t')))

  (* Degenerate inputs for the tolerant reader: a zero-length file and a
     header-only file are valid empty traces (nothing dropped, no error,
     no trailer), not crashes. *)
  let tolerant_degenerate content () =
    let path = Filename.temp_file "hawkset" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        let t = Trace.Trace_io.load_tolerant path in
        Alcotest.(check int) "salvaged events" 0 t.Trace.Trace_io.salvaged_events;
        Alcotest.(check int) "tracebuf empty" 0
          (Trace.Tracebuf.length t.Trace.Trace_io.salvaged);
        Alcotest.(check int) "dropped lines" 0 t.Trace.Trace_io.dropped_lines;
        Alcotest.(check bool) "no first error" true
          (t.Trace.Trace_io.first_error = None);
        Alcotest.(check bool) "checksum absent" true
          (t.Trace.Trace_io.checksum = `Absent))

  let junk_never_crashes =
    QCheck.Test.make ~name:"malformed lines raise Parse_error, never crash"
      ~count:300
      QCheck.(string_of_size (QCheck.Gen.int_bound 40))
      (fun line ->
        match Trace.Trace_io.event_of_line line with
        | _ -> true
        | exception Trace.Trace_io.Parse_error _ -> true)

  let tests =
    [
      QCheck_alcotest.to_alcotest junk_never_crashes;
      Alcotest.test_case "line roundtrip" `Quick line_roundtrip;
      Alcotest.test_case "file roundtrip" `Quick file_roundtrip;
      Alcotest.test_case "comments and blanks" `Quick comments_and_blanks_skipped;
      Alcotest.test_case "parse errors" `Quick parse_errors;
      Alcotest.test_case "analysis survives roundtrip" `Quick
        analysis_survives_roundtrip;
      Alcotest.test_case "tolerant on zero-length file" `Quick
        (tolerant_degenerate "");
      Alcotest.test_case "tolerant on header-only file" `Quick
        (tolerant_degenerate "# hawkset-trace 1\n");
    ]
end

module Fuzz_tests = struct
  (* Corruption fuzzing for the trace format: serialized traces carry a
     checksum trailer, so the strict reader must either return exactly
     what was written or raise [Parse_error] — silently returning altered
     events is the one forbidden outcome. The tolerant reader must never
     raise and must salvage exactly the valid prefix. *)

  let gen_event =
    QCheck.Gen.(
      let tid = map Trace.Tid.of_int (int_bound 3) in
      let addr = map (fun i -> 64 + (8 * i)) (int_bound 64) in
      let size = oneofl [ 1; 2; 4; 8 ] in
      let site =
        map3
          (fun f l frames -> Trace.Site.v ~frames (Printf.sprintf "f%d.ml" f) l)
          (int_bound 4) (int_range 1 500)
          (oneofl [ []; [ "ins" ]; [ "ins"; "main" ] ])
      in
      frequency
        [
          ( 4,
            map2
              (fun (tid, addr) (size, site) ->
                Trace.Event.Store
                  { tid; addr; size; site; non_temporal = false })
              (pair tid addr) (pair size site) );
          ( 4,
            map2
              (fun (tid, addr) (size, site) ->
                Trace.Event.Load { tid; addr; size; site })
              (pair tid addr) (pair size site) );
          ( 2,
            map3
              (fun tid addr site ->
                Trace.Event.Flush
                  { tid; line = addr; kind = Trace.Event.Clwb; site })
              tid addr site );
          (2, map2 (fun tid site -> Trace.Event.Fence { tid; site }) tid site);
          ( 1,
            map3
              (fun tid lock site ->
                Trace.Event.Lock_acquire
                  { tid; lock = Trace.Lock_id.of_int lock; site })
              tid (int_bound 7) site );
          ( 1,
            map3
              (fun tid lock site ->
                Trace.Event.Lock_release
                  { tid; lock = Trace.Lock_id.of_int lock; site })
              tid (int_bound 7) site );
        ])

  let gen_events = QCheck.Gen.(list_size (int_range 1 30) gen_event)

  let canon t = List.map Trace.Trace_io.event_to_line (Trace.Tracebuf.to_list t)

  (* Serialize through the real writer so the string carries the trailer. *)
  let serialize evs =
    let path = Filename.temp_file "hawkset_fuzz" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Trace.Trace_io.save path (Trace.Tracebuf.of_list evs);
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic)))

  let with_string s f =
    let path = Filename.temp_file "hawkset_fuzz" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc;
        f path)

  (* Complete event lines fully contained in [prefix] — what a tolerant
     read of the truncated file must at least recover. *)
  let complete_events prefix =
    let lines = String.split_on_char '\n' prefix in
    let lines =
      (* Without a trailing newline the final segment is a partial line. *)
      if String.length prefix > 0 && prefix.[String.length prefix - 1] = '\n'
      then lines
      else match List.rev lines with [] -> [] | _ :: r -> List.rev r
    in
    List.length
      (List.filter
         (fun l ->
           let t = String.trim l in
           t <> "" && t.[0] <> '#')
         lines)

  let roundtrip_with_trailer =
    QCheck.Test.make ~name:"save/load round-trips and verifies the trailer"
      ~count:100 (QCheck.make gen_events) (fun evs ->
        let s = serialize evs in
        let has_trailer =
          List.exists
            (fun l ->
              String.length l >= 10 && String.sub l 0 10 = "# trailer ")
            (String.split_on_char '\n' s)
        in
        with_string s (fun path ->
            let strict = Trace.Trace_io.load path in
            let t = Trace.Trace_io.load_tolerant path in
            has_trailer
            && canon strict = List.map Trace.Trace_io.event_to_line evs
            && t.Trace.Trace_io.checksum = `Verified
            && t.Trace.Trace_io.dropped_lines = 0
            && t.Trace.Trace_io.first_error = None
            && canon t.Trace.Trace_io.salvaged = canon strict))

  let truncate_salvages_prefix =
    QCheck.Test.make ~name:"truncation at any byte salvages a valid prefix"
      ~count:200
      QCheck.(make Gen.(pair gen_events (float_bound_inclusive 1.0)))
      (fun (evs, frac) ->
        let s = serialize evs in
        let k = int_of_float (frac *. float_of_int (String.length s)) in
        let k = min k (String.length s) in
        let prefix = String.sub s 0 k in
        let complete = complete_events prefix in
        let orig = List.map Trace.Trace_io.event_to_line evs in
        with_string prefix (fun path ->
            let t = Trace.Trace_io.load_tolerant path in
            let n = List.length evs in
            let salvaged = canon t.Trace.Trace_io.salvaged in
            (* Salvage is exactly the complete lines, plus at most one
               event from a cut line that happens to still parse. *)
            t.Trace.Trace_io.salvaged_events >= complete
            && t.Trace.Trace_io.salvaged_events <= min n (complete + 1)
            && List.for_all2 ( = )
                 (List.filteri (fun i _ -> i < complete) salvaged)
                 (List.filteri (fun i _ -> i < complete) orig)
            && (k < String.length s
               || t.Trace.Trace_io.checksum = `Verified
                  && t.Trace.Trace_io.salvaged_events = n)
            (* The strict reader may reject the truncation, but if it
               accepts, everything before any cut line matches what was
               written. *)
            &&
            match Trace.Trace_io.load path with
            | strict ->
                let c = canon strict in
                List.length c <= n
                && List.for_all2 ( = )
                     (List.filteri (fun i _ -> i < complete) c)
                     (List.filteri (fun i _ -> i < complete) orig)
            | exception Trace.Trace_io.Parse_error _ -> true))

  let flip_is_caught =
    QCheck.Test.make
      ~name:"a flipped byte either fails the load or changes nothing"
      ~count:300
      QCheck.(
        make Gen.(triple gen_events (float_bound_inclusive 1.0) (int_range 1 255)))
      (fun (evs, frac, xor) ->
        let s = serialize evs in
        let p =
          min (String.length s - 1)
            (int_of_float (frac *. float_of_int (String.length s)))
        in
        let flipped = Bytes.of_string s in
        Bytes.set flipped p (Char.chr (Char.code s.[p] lxor xor));
        let flipped = Bytes.to_string flipped in
        with_string flipped (fun path ->
            (* Forbidden outcome: a strict load that "succeeds" with
               different events than were written. *)
            (match Trace.Trace_io.load path with
            | strict -> canon strict = List.map Trace.Trace_io.event_to_line evs
            | exception Trace.Trace_io.Parse_error _ -> true)
            &&
            (* The tolerant reader absorbs the same corruption. *)
            match Trace.Trace_io.load_tolerant path with
            | _ -> true
            | exception Trace.Trace_io.Parse_error _ -> false))

  let inject_malformed_line =
    QCheck.Test.make
      ~name:"a malformed line is located exactly; tolerant salvages before it"
      ~count:200
      QCheck.(make Gen.(pair gen_events (float_bound_inclusive 1.0)))
      (fun (evs, frac) ->
        let n = List.length evs in
        let j = min n (int_of_float (frac *. float_of_int (n + 1))) in
        let lines = String.split_on_char '\n' (serialize evs) in
        (* serialize ends with '\n': last split segment is "". Lines:
           header, n events, trailer, "". Insert before event j, i.e. at
           list index 1 + j; its 1-based line number is j + 2. *)
        let rec insert i = function
          | rest when i = 0 -> "Z bogus" :: rest
          | [] -> [ "Z bogus" ]
          | l :: rest -> l :: insert (i - 1) rest
        in
        let corrupted = String.concat "\n" (insert (1 + j) lines) in
        let orig = List.map Trace.Trace_io.event_to_line evs in
        with_string corrupted (fun path ->
            (match Trace.Trace_io.load path with
            | _ -> false
            | exception Trace.Trace_io.Parse_error (line, _) -> line = j + 2)
            &&
            let t = Trace.Trace_io.load_tolerant path in
            t.Trace.Trace_io.salvaged_events = j
            && canon t.Trace.Trace_io.salvaged
               = List.filteri (fun i _ -> i < j) orig
            && t.Trace.Trace_io.dropped_lines = 1 + (n - j)
            && (match t.Trace.Trace_io.first_error with
               | Some (line, _) -> line = j + 2
               | None -> false)
            && t.Trace.Trace_io.checksum
               = (if j = n then `Verified else `Mismatch)))

  let tests =
    [
      QCheck_alcotest.to_alcotest roundtrip_with_trailer;
      QCheck_alcotest.to_alcotest truncate_salvages_prefix;
      QCheck_alcotest.to_alcotest flip_is_caught;
      QCheck_alcotest.to_alcotest inject_malformed_line;
    ]
end

module Int_tbl_tests = struct
  module S = Trace.Int_tbl.Set
  module M = Trace.Int_tbl.Map

  let set_clear_refill_at_boundary () =
    (* Fill a small table through several growths, clear, refill with a
       disjoint key range: [clear] keeps capacity, so the refill lands in
       the same arrays — membership must be exact for both ranges. *)
    let t = S.create ~size:8 () in
    for k = 0 to 63 do
      Alcotest.(check bool) "fresh add" true (S.add t k)
    done;
    Alcotest.(check int) "filled" 64 (S.length t);
    S.clear t;
    Alcotest.(check int) "cleared" 0 (S.length t);
    for k = 0 to 63 do
      Alcotest.(check bool) "old key gone" false (S.mem t k)
    done;
    for k = 100 to 163 do
      Alcotest.(check bool) "refill add" true (S.add t k)
    done;
    Alcotest.(check int) "refilled" 64 (S.length t);
    for k = 100 to 163 do
      Alcotest.(check bool) "new key present" true (S.mem t k)
    done;
    for k = 0 to 63 do
      Alcotest.(check bool) "old key still gone" false (S.mem t k)
    done

  let set_churn_matches_model () =
    (* Heavy delete/insert churn over a key range far wider than the
       initial capacity, mirrored against a Hashtbl model: tombstone
       reuse and the churn-triggered rehash must never lose or
       resurrect a key. *)
    let t = S.create ~size:8 () in
    let model = Hashtbl.create 64 in
    let rng = Random.State.make [| 7 |] in
    for _ = 1 to 5_000 do
      let k = Random.State.int rng 200 in
      if Random.State.bool rng then begin
        let fresh = not (Hashtbl.mem model k) in
        Hashtbl.replace model k ();
        Alcotest.(check bool) "add agrees with model" fresh (S.add t k)
      end
      else begin
        let present = Hashtbl.mem model k in
        Hashtbl.remove model k;
        Alcotest.(check bool) "remove agrees with model" present (S.remove t k)
      end
    done;
    Alcotest.(check int) "length agrees" (Hashtbl.length model) (S.length t);
    for k = 0 to 199 do
      Alcotest.(check bool)
        (Printf.sprintf "mem %d agrees" k)
        (Hashtbl.mem model k) (S.mem t k)
    done

  let map_churn_matches_model () =
    let t = M.create ~size:8 () in
    let model = Hashtbl.create 64 in
    let rng = Random.State.make [| 11 |] in
    for step = 1 to 5_000 do
      let k = Random.State.int rng 200 in
      if Random.State.bool rng then begin
        Hashtbl.replace model k step;
        M.set t k step
      end
      else begin
        let present = Hashtbl.mem model k in
        Hashtbl.remove model k;
        Alcotest.(check bool) "remove agrees with model" present (M.remove t k)
      end
    done;
    Alcotest.(check int) "length agrees" (Hashtbl.length model) (M.length t);
    for k = 0 to 199 do
      Alcotest.(check int)
        (Printf.sprintf "find %d agrees" k)
        (Option.value ~default:(-1) (Hashtbl.find_opt model k))
        (M.find t k)
    done

  let map_tombstone_slot_reused () =
    let t = M.create ~size:8 () in
    M.set t 5 1;
    Alcotest.(check bool) "removed" true (M.remove t 5);
    Alcotest.(check int) "absent after remove" (-1) (M.find t 5);
    Alcotest.(check bool) "second remove is a no-op" false (M.remove t 5);
    M.set t 5 3;
    Alcotest.(check int) "reinserted through the tombstone" 3 (M.find t 5);
    Alcotest.(check int) "length" 1 (M.length t)

  let tests =
    [
      Alcotest.test_case "set clear+refill at capacity" `Quick
        set_clear_refill_at_boundary;
      Alcotest.test_case "set churn matches model" `Quick
        set_churn_matches_model;
      Alcotest.test_case "map churn matches model" `Quick
        map_churn_matches_model;
      Alcotest.test_case "map tombstone slot reused" `Quick
        map_tombstone_slot_reused;
    ]
end

module Vec_tests = struct
  module V = Trace.Vec

  let growth_from_empty () =
    let v = V.create () in
    Alcotest.(check int) "starts empty" 0 (V.length v);
    for i = 0 to 99 do
      V.push v (i * 3)
    done;
    Alcotest.(check int) "length" 100 (V.length v);
    for i = 0 to 99 do
      Alcotest.(check int) (Printf.sprintf "get %d" i) (i * 3) (V.get v i)
    done

  let growth_from_one () =
    (* The 1-element vector exercises the smallest doubling step: the
       second push must grow, not overwrite. *)
    let v = V.create () in
    V.push v "a";
    V.push v "b";
    Alcotest.(check int) "length" 2 (V.length v);
    Alcotest.(check string) "first survives growth" "a" (V.get v 0);
    Alcotest.(check string) "second" "b" (V.get v 1)

  let clear_then_refill () =
    let v = V.create () in
    for i = 0 to 9 do
      V.push v i
    done;
    V.clear v;
    Alcotest.(check int) "cleared" 0 (V.length v);
    V.push v 42;
    Alcotest.(check int) "refill length" 1 (V.length v);
    Alcotest.(check int) "refill value" 42 (V.get v 0);
    let seen = ref [] in
    V.iter (fun x -> seen := x :: !seen) v;
    Alcotest.(check (list int)) "iter sees only live elements" [ 42 ] !seen

  let tests =
    [
      Alcotest.test_case "growth from empty" `Quick growth_from_empty;
      Alcotest.test_case "growth from one element" `Quick growth_from_one;
      Alcotest.test_case "clear then refill" `Quick clear_then_refill;
    ]
end

let () =
  Alcotest.run "trace"
    [
      ("tid", Tid_tests.tests);
      ("site", Site_tests.tests);
      ("event", Event_tests.tests);
      ("tracebuf", Tracebuf_tests.tests);
      ("interner", Interner_tests.tests);
      ("trace_io", Trace_io_tests.tests);
      ("int_tbl", Int_tbl_tests.tests);
      ("vec", Vec_tests.tests);
      ("fuzz", Fuzz_tests.tests);
    ]
