(* Helpers shared across test executables.  Dune links this module into
   every test in the directory, so assertions about JSON output go
   through one parser instead of per-file copies. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* A minimal JSON reader — enough to round-trip the emitters' output and
   fail loudly on malformed text. *)
module Mini_json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      if peek () <> c then
        raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let literal lit v =
      String.iter (fun c -> expect c) lit;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                advance (); advance (); advance ();
                Buffer.add_char b '?'
            | c -> Buffer.add_char b c);
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        advance ()
      done;
      if !pos = start then raise (Bad "empty number");
      float_of_string (String.sub s start (!pos - start))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then begin advance (); Obj [] end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); members ((k, v) :: acc)
              | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
              | c -> raise (Bad (Printf.sprintf "bad object char %c" c))
            in
            members []
          end
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then begin advance (); Arr [] end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); elements (v :: acc)
              | ']' -> advance (); Arr (List.rev (v :: acc))
              | c -> raise (Bad (Printf.sprintf "bad array char %c" c))
            in
            elements []
          end
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member k = function
    | Obj kvs -> List.assoc k kvs
    | _ -> raise (Bad ("not an object looking up " ^ k))

  let member_opt k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let keys = function Obj kvs -> List.map fst kvs | _ -> raise (Bad "keys of non-object")
  let to_str = function Str s -> s | _ -> raise (Bad "expected a string")
  let to_num = function Num x -> x | _ -> raise (Bad "expected a number")
  let to_list = function Arr l -> l | _ -> raise (Bad "expected an array")

  (* Shorthand for the common "field k of object j is a string/number"
     assertions test code makes against manifests and trace exports. *)
  let str_mem k j = to_str (member k j)
  let num_mem k j = to_num (member k j)
end
