(* Tests for the workload generators: YCSB mixes, zipfian sampling, the
   PMRace seed corpus and its mutation engine. *)

module Zipf_tests = struct
  let skewed () =
    let z = Workload.Zipf.create 100 in
    let prng = Machine.Prng.create 1 in
    let counts = Array.make 100 0 in
    for _ = 1 to 10_000 do
      let v = Workload.Zipf.sample z prng in
      counts.(v) <- counts.(v) + 1
    done;
    Alcotest.(check bool) "rank 0 most popular" true
      (counts.(0) > counts.(10) && counts.(10) > counts.(70));
    Alcotest.(check bool) "head heavy" true (counts.(0) > 500)

  let bounds =
    QCheck.Test.make ~name:"samples within bounds" ~count:200
      QCheck.(pair (int_range 1 500) small_int)
      (fun (n, seed) ->
        let z = Workload.Zipf.create n in
        let prng = Machine.Prng.create seed in
        let v = Workload.Zipf.sample z prng in
        v >= 0 && v < n)

  let invalid () =
    Alcotest.check_raises "zero size"
      (Invalid_argument "Zipf.create: non-positive size") (fun () ->
        ignore (Workload.Zipf.create 0))

  let tests =
    [
      Alcotest.test_case "skew" `Quick skewed;
      QCheck_alcotest.to_alcotest bounds;
      Alcotest.test_case "invalid size" `Quick invalid;
    ]
end

module Ycsb_tests = struct
  let mix_proportions () =
    let spec = Workload.Ycsb.paper_mix ~ops:10_000 in
    let w = Workload.Ycsb.generate ~seed:1 spec in
    let i = ref 0 and u = ref 0 and g = ref 0 and d = ref 0 in
    Array.iter
      (List.iter (fun op ->
           match op with
           | Workload.Op.Insert _ -> incr i
           | Workload.Op.Update _ -> incr u
           | Workload.Op.Get _ -> incr g
           | Workload.Op.Delete _ -> incr d))
      w.Workload.Ycsb.per_thread;
    let total = !i + !u + !g + !d in
    Alcotest.(check int) "total main ops" 10_000 total;
    let pct n = 100 * n / total in
    Alcotest.(check bool) "30/30/30/10 mix" true
      (abs (pct !i - 30) <= 3 && abs (pct !u - 30) <= 3
      && abs (pct !g - 30) <= 3
      && abs (pct !d - 10) <= 3)

  let load_phase () =
    let w = Workload.Ycsb.generate ~seed:2 (Workload.Ycsb.paper_mix ~ops:100) in
    Alcotest.(check int) "1k load inserts" 1000 (List.length w.Workload.Ycsb.load);
    Alcotest.(check bool) "all inserts" true
      (List.for_all
         (fun op -> match op with Workload.Op.Insert _ -> true | _ -> false)
         w.Workload.Ycsb.load);
    let keys = List.map Workload.Op.kv_key w.Workload.Ycsb.load in
    Alcotest.(check int) "distinct keys" 1000
      (List.length (List.sort_uniq compare keys))

  let determinism () =
    let spec = Workload.Ycsb.paper_mix ~ops:500 in
    let a = Workload.Ycsb.generate ~seed:9 spec in
    let b = Workload.Ycsb.generate ~seed:9 spec in
    let c = Workload.Ycsb.generate ~seed:10 spec in
    Alcotest.(check bool) "same seed" true (a = b);
    Alcotest.(check bool) "different seed" true (a <> c)

  let invalid_mix () =
    let spec = { (Workload.Ycsb.paper_mix ~ops:10) with insert_pct = 50 } in
    Alcotest.check_raises "bad mix"
      (Invalid_argument "Ycsb.generate: operation mix must sum to 100")
      (fun () -> ignore (Workload.Ycsb.generate ~seed:0 spec))

  let thread_split =
    QCheck.Test.make ~name:"ops split across threads evenly" ~count:50
      QCheck.(pair (int_range 8 2000) (int_range 1 16))
      (fun (ops, threads) ->
        let spec = { (Workload.Ycsb.paper_mix ~ops) with threads } in
        let w = Workload.Ycsb.generate ~seed:3 spec in
        let lens =
          Array.to_list (Array.map List.length w.Workload.Ycsb.per_thread)
        in
        List.fold_left ( + ) 0 lens = ops
        && List.for_all
             (fun l -> abs (l - (ops / threads)) <= 1)
             lens)

  let memcached_and_madfs () =
    let mc = Workload.Ycsb.memcached_mix ~seed:4 ~ops:800 ~threads:8 in
    let total =
      Array.fold_left (fun acc l -> acc + List.length l) 0 mc
    in
    Alcotest.(check int) "mc ops + 1000-set load phase" 1800 total;
    let fs = Workload.Ycsb.madfs_mix ~seed:4 ~ops:800 ~threads:8 ~file_blocks:32 in
    let writes =
      Array.fold_left
        (fun acc l ->
          acc
          + List.length
              (List.filter
                 (fun op ->
                   match op with Workload.Op.Fs_write _ -> true | _ -> false)
                 l))
        0 fs
    in
    Alcotest.(check bool) "~80% writes" true (writes > 500 && writes < 750)

  let zipfian_spec () =
    let spec =
      { (Workload.Ycsb.paper_mix ~ops:4000) with zipfian = true; key_space = 64 }
    in
    let w = Workload.Ycsb.generate ~seed:6 spec in
    let counts = Hashtbl.create 64 in
    Array.iter
      (List.iter (fun op ->
           let k = Workload.Op.kv_key op in
           Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))))
      w.Workload.Ycsb.per_thread;
    let hot = Option.value ~default:0 (Hashtbl.find_opt counts 1) in
    let cold = Option.value ~default:0 (Hashtbl.find_opt counts 60) in
    Alcotest.(check bool)
      (Printf.sprintf "rank-1 key hot (%d vs %d)" hot cold)
      true (hot > 4 * max 1 cold)

  let tests =
    [
      Alcotest.test_case "mix proportions" `Quick mix_proportions;
      Alcotest.test_case "zipfian keys" `Quick zipfian_spec;
      Alcotest.test_case "load phase" `Quick load_phase;
      Alcotest.test_case "determinism" `Quick determinism;
      Alcotest.test_case "invalid mix" `Quick invalid_mix;
      QCheck_alcotest.to_alcotest thread_split;
      Alcotest.test_case "memcached and madfs mixes" `Quick memcached_and_madfs;
    ]
end

module Seeds_tests = struct
  let corpus_shape () =
    let c = Workload.Seeds.corpus ~count:24 ~ops_per_seed:400 () in
    Alcotest.(check int) "24 seeds" 24 (Array.length c);
    Array.iter
      (fun seed -> Alcotest.(check int) "400 ops" 400 (List.length seed))
      c;
    Alcotest.(check bool) "seeds differ" true (c.(0) <> c.(1))

  let corpus_deterministic () =
    let a = Workload.Seeds.corpus ~count:4 () in
    let b = Workload.Seeds.corpus ~count:4 () in
    Alcotest.(check bool) "same corpus" true (a = b)

  let mutation_changes_but_preserves_size =
    QCheck.Test.make ~name:"mutation keeps rough size" ~count:100
      QCheck.small_int
      (fun seed ->
        let prng = Machine.Prng.create seed in
        let base = (Workload.Seeds.corpus ~count:1 ~ops_per_seed:100 ()).(0) in
        let m = Workload.Seeds.mutate prng base in
        let n = List.length m in
        n >= 80 && n <= 120)

  let split_round_robin () =
    let ops = (Workload.Seeds.corpus ~count:1 ~ops_per_seed:40 ()).(0) in
    let per_thread = Workload.Seeds.split ~threads:8 ops in
    Alcotest.(check int) "threads" 8 (Array.length per_thread);
    Alcotest.(check int) "all ops dealt" 40
      (Array.fold_left (fun acc l -> acc + List.length l) 0 per_thread);
    (* Round-robin: thread 0 gets ops 0, 8, 16, ... in order. *)
    Alcotest.(check bool) "thread 0 order" true
      (per_thread.(0)
      = List.filteri (fun i _ -> i mod 8 = 0) ops)

  let tests =
    [
      Alcotest.test_case "corpus shape" `Quick corpus_shape;
      Alcotest.test_case "corpus deterministic" `Quick corpus_deterministic;
      QCheck_alcotest.to_alcotest mutation_changes_but_preserves_size;
      Alcotest.test_case "split round robin" `Quick split_round_robin;
    ]
end

module Statistical_tests = struct
  (* Distribution-shape tests at fixed seeds: the samplers must not just
     stay in bounds, they must follow the distribution the paper's
     workloads assume — empirical frequencies within tolerance of the
     analytic values. Seeds are pinned, so these are deterministic. *)

  let zipf_frequencies ?theta n samples seed =
    let z = Workload.Zipf.create ?theta n in
    let prng = Machine.Prng.create seed in
    let counts = Array.make n 0 in
    for _ = 1 to samples do
      let v = Workload.Zipf.sample z prng in
      counts.(v) <- counts.(v) + 1
    done;
    Array.map (fun c -> float_of_int c /. float_of_int samples) counts

  (* Empirical head probabilities vs the analytic zipfian pmf
     p(k) = k^-theta / H: within 15% relative error on the heavy ranks
     at 50k samples. *)
  let matches_pmf () =
    let n = 50 and theta = 0.99 and samples = 50_000 in
    let freq = zipf_frequencies ~theta n samples 11 in
    let h =
      let acc = ref 0.0 in
      for k = 1 to n do
        acc := !acc +. (1.0 /. (float_of_int k ** theta))
      done;
      !acc
    in
    List.iter
      (fun rank ->
        let expected = 1.0 /. (float_of_int (rank + 1) ** theta) /. h in
        let got = freq.(rank) in
        Alcotest.(check bool)
          (Printf.sprintf "rank %d: %.4f within 15%% of %.4f" rank got expected)
          true
          (abs_float (got -. expected) <= 0.15 *. expected))
      [ 0; 1; 2; 4; 9 ]

  (* More skew concentrates more mass on the head, monotonically in
     theta. *)
  let theta_orders_head_mass () =
    let head theta =
      let freq = zipf_frequencies ~theta 100 20_000 12 in
      freq.(0) +. freq.(1) +. freq.(2)
    in
    let flat = head 0.5 and paper = head 0.99 and steep = head 1.3 in
    Alcotest.(check bool)
      (Printf.sprintf "head mass grows with theta (%.3f < %.3f < %.3f)" flat
         paper steep)
      true
      (flat < paper && paper < steep)

  (* The memcached mix: ten op kinds drawn uniformly, so each should hold
     ~10% of the main phase at a fixed seed (load phase excluded). *)
  let memcached_mix_uniform () =
    let ops = 10_000 and threads = 8 in
    let mix = Workload.Ycsb.memcached_mix ~seed:13 ~ops ~threads in
    let counts = Hashtbl.create 16 in
    let bump k =
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
    in
    Array.iteri
      (fun t l ->
        (* Thread 0 carries the 1000-set load phase prepended to its main
           ops; skip it so only the uniform mix is counted. *)
        let l = if t = 0 then List.filteri (fun i _ -> i >= 1000) l else l in
        List.iter
          (fun (op : Workload.Op.mc) ->
            bump
              (match op with
              | Workload.Op.Mc_set _ -> "set"
              | Workload.Op.Mc_get _ -> "get"
              | Workload.Op.Mc_add _ -> "add"
              | Workload.Op.Mc_replace _ -> "replace"
              | Workload.Op.Mc_append _ -> "append"
              | Workload.Op.Mc_prepend _ -> "prepend"
              | Workload.Op.Mc_cas _ -> "cas"
              | Workload.Op.Mc_delete _ -> "delete"
              | Workload.Op.Mc_incr _ -> "incr"
              | Workload.Op.Mc_decr _ -> "decr"))
          l)
      mix;
    let total = Hashtbl.fold (fun _ c acc -> acc + c) counts 0 in
    Alcotest.(check int) "main phase total" ops total;
    Hashtbl.iter
      (fun kind c ->
        let pct = 100.0 *. float_of_int c /. float_of_int total in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %.1f%% within 10±2.5%%" kind pct)
          true
          (abs_float (pct -. 10.0) <= 2.5))
      counts

  (* The MadFS mix advertises 80% writes at zipfian offsets. *)
  let madfs_mix_proportions () =
    let fs =
      Workload.Ycsb.madfs_mix ~seed:14 ~ops:10_000 ~threads:8 ~file_blocks:64
    in
    let writes = ref 0 and total = ref 0 and block0 = ref 0 in
    Array.iter
      (List.iter (fun (op : Workload.Op.fs) ->
           incr total;
           match op with
           | Workload.Op.Fs_write (off, _) ->
               incr writes;
               if off = 0 then incr block0
           | Workload.Op.Fs_read (off, _) -> if off = 0 then incr block0))
      fs;
    let write_pct = 100.0 *. float_of_int !writes /. float_of_int !total in
    Alcotest.(check bool)
      (Printf.sprintf "%.1f%% writes within 80±3%%" write_pct)
      true
      (abs_float (write_pct -. 80.0) <= 3.0);
    (* Zipfian offsets: the rank-1 block draws far more than the uniform
       1/64 share (~1.56%). *)
    let block0_pct = 100.0 *. float_of_int !block0 /. float_of_int !total in
    Alcotest.(check bool)
      (Printf.sprintf "block 0 hot (%.1f%% > 10%%)" block0_pct)
      true (block0_pct > 10.0)

  (* The YCSB kv mix at a fixed seed, tighter than the smoke test: each
     class within ±2% of its nominal share at 20k ops. *)
  let kv_mix_tight () =
    let ops = 20_000 in
    let w = Workload.Ycsb.generate ~seed:15 (Workload.Ycsb.paper_mix ~ops) in
    let i = ref 0 and u = ref 0 and g = ref 0 and d = ref 0 in
    Array.iter
      (List.iter (fun op ->
           match op with
           | Workload.Op.Insert _ -> incr i
           | Workload.Op.Update _ -> incr u
           | Workload.Op.Get _ -> incr g
           | Workload.Op.Delete _ -> incr d))
      w.Workload.Ycsb.per_thread;
    let pct n = 100.0 *. float_of_int n /. float_of_int ops in
    List.iter
      (fun (name, count, nominal) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %.1f%% within %g±2%%" name (pct count) nominal)
          true
          (abs_float (pct count -. nominal) <= 2.0))
      [ ("insert", !i, 30.0); ("update", !u, 30.0); ("get", !g, 30.0);
        ("delete", !d, 10.0) ]

  let tests =
    [
      Alcotest.test_case "zipf matches pmf" `Quick matches_pmf;
      Alcotest.test_case "theta orders head mass" `Quick theta_orders_head_mass;
      Alcotest.test_case "memcached mix uniform" `Quick memcached_mix_uniform;
      Alcotest.test_case "madfs mix proportions" `Quick madfs_mix_proportions;
      Alcotest.test_case "kv mix tight" `Quick kv_mix_tight;
    ]
end

let () =
  Alcotest.run "workload"
    [
      ("zipf", Zipf_tests.tests);
      ("ycsb", Ycsb_tests.tests);
      ("statistics", Statistical_tests.tests);
      ("seeds", Seeds_tests.tests);
    ]
